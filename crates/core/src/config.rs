//! Discovery configuration.
//!
//! Mirrors the knobs the paper calls out: the node configuration file's
//! BDN list (§3), the configurable collection timeout and maximum
//! response count (§9), the target-set size `size(T) <= size(N)` —
//! "usually … between 5 and 20, and configurable" (§10) — the ping
//! repetition count, and the weighting factors of the selection formula.

use std::time::Duration;

use nb_security::{Certificate, Identity, PublicKey};
use nb_util::{Config, ConfigError};
use nb_wire::{Credential, NodeId};
use rand::Rng;

/// Weighting factors for broker selection — the paper's §9 snippet:
///
/// ```text
/// weight += (freemem / totalmem) * WEIGHTAGE_FREE_TO_TOTAL_MEMORY;
/// weight += (totalmem / (1024 * 1024)) * WEIGHTAGE_TOTAL_MEMORY;
/// weight -= numlinks * WEIGHTAGE_NUM_LINKS;
/// // OTHER factors may be similarly added
/// ```
///
/// We add connection count, CPU load and estimated delay as the paper's
/// "OTHER factors".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionWeights {
    /// Reward per unit of free/total memory ratio (higher is better).
    pub free_to_total_memory: f64,
    /// Reward per MiB of total memory (higher is better).
    pub total_memory_mb: f64,
    /// Penalty per overlay link (lower is better).
    pub num_links: f64,
    /// Penalty per active client connection.
    pub connections: f64,
    /// Penalty per unit CPU load in `[0, 1]`.
    pub cpu_load: f64,
    /// Penalty per millisecond of estimated one-way delay.
    pub delay_ms: f64,
}

impl Default for SelectionWeights {
    fn default() -> Self {
        SelectionWeights {
            free_to_total_memory: 100.0,
            total_memory_mb: 0.01,
            num_links: 1.0,
            connections: 0.1,
            cpu_load: 50.0,
            delay_ms: 0.5,
        }
    }
}

impl SelectionWeights {
    /// Weights that ignore load entirely and optimise pure proximity
    /// (ablation: "nearest-only" selection).
    pub fn proximity_only() -> SelectionWeights {
        SelectionWeights {
            free_to_total_memory: 0.0,
            total_memory_mb: 0.0,
            num_links: 0.0,
            connections: 0.0,
            cpu_load: 0.0,
            delay_ms: 1.0,
        }
    }

    /// Weights that ignore proximity and optimise pure load (ablation).
    pub fn load_only() -> SelectionWeights {
        SelectionWeights { delay_ms: 0.0, ..SelectionWeights::default() }
    }
}

/// Capped exponential backoff with bounded jitter, used by retry paths
/// (BDN request retransmission, stranded-entity re-discovery). The
/// nominal schedule is `base * multiplier^attempt` capped at `cap`; a
/// concrete delay jitters the nominal uniformly within `±jitter_frac`
/// so synchronized failures don't produce synchronized retry storms —
/// the retry-storm failure mode the network-utilization literature
/// flags for discovery protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// First-attempt nominal delay.
    pub base: Duration,
    /// Growth factor per attempt (>= 1).
    pub multiplier: f64,
    /// Nominal delays never exceed this.
    pub cap: Duration,
    /// Jitter half-width as a fraction of nominal, in `[0, 1)`.
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// A policy with sanitised parameters (`multiplier` floored at 1,
    /// `jitter_frac` clamped into `[0, 1)`).
    pub fn new(base: Duration, multiplier: f64, cap: Duration, jitter_frac: f64) -> RetryPolicy {
        RetryPolicy {
            base,
            multiplier: multiplier.max(1.0),
            cap: cap.max(base),
            jitter_frac: jitter_frac.clamp(0.0, 0.999),
        }
    }

    /// The default discovery retry policy: 1 s base, doubling, 30 s cap,
    /// ±25% jitter.
    pub fn discovery_default() -> RetryPolicy {
        RetryPolicy::new(Duration::from_secs(1), 2.0, Duration::from_secs(30), 0.25)
    }

    /// The nominal (un-jittered) delay for the 0-based `attempt`:
    /// monotone non-decreasing in `attempt` and capped at `cap`.
    pub fn nominal(&self, attempt: u32) -> Duration {
        let base = self.base.as_secs_f64();
        let cap = self.cap.as_secs_f64();
        let exp = self.multiplier.powi(attempt.min(63) as i32);
        Duration::from_secs_f64((base * exp).min(cap))
    }

    /// A concrete jittered delay for `attempt`, uniform in
    /// `[nominal * (1 - jitter_frac), nominal * (1 + jitter_frac)]`.
    pub fn delay<R: Rng + ?Sized>(&self, attempt: u32, rng: &mut R) -> Duration {
        let nominal = self.nominal(attempt);
        if self.jitter_frac <= 0.0 {
            return nominal;
        }
        let f = 1.0 - self.jitter_frac + 2.0 * self.jitter_frac * rng.gen::<f64>();
        nominal.mul_f64(f)
    }
}

/// Credentials for the secured request path (paper §9.1): the client
/// signs + encrypts its discovery request to the BDN's public key; the
/// BDN validates the certificate chain against the shared trust root.
#[derive(Debug, Clone)]
pub struct SecuritySuite {
    /// This node's identity (keys + certificate chain).
    pub identity: Identity,
    /// The trust anchor for peer certificate chains.
    pub trust_root: Certificate,
    /// The peer's (BDN's) public key requests are encrypted to.
    pub peer_public: PublicKey,
}

/// Full configuration of the discovery process at a requesting node.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// BDNs to try, in preference order (the node configuration file's
    /// `gridservicelocator.org/.com/.net/.info` list plus private BDNs).
    pub bdns: Vec<NodeId>,
    /// How long to gather discovery responses before deciding
    /// (paper: "typically 4-5 seconds", configurable).
    pub collection_window: Duration,
    /// Stop collecting once this many responses arrived ("a client might
    /// … specify that only the first N responses must be considered").
    pub max_responses: usize,
    /// Target set size `size(T)` (paper: 5–20, typically ~10).
    pub target_set_size: usize,
    /// UDP pings sent per target broker ("may be repeated multiple times
    /// to compute the average RTT").
    pub ping_count: u32,
    /// How long to wait for pongs before deciding.
    pub ping_window: Duration,
    /// BDN ack timeout before retransmitting the request.
    pub ack_timeout: Duration,
    /// Retransmissions per BDN before failing over to the next.
    pub retransmits_per_bdn: u32,
    /// Fall back to multicast when every configured BDN is unreachable.
    pub multicast_fallback: bool,
    /// Skip BDNs entirely and discover via multicast only (Figure 12).
    pub multicast_only: bool,
    /// Master multicast switch: when false the node behaves as if the
    /// network had no multicast routing — `multicast_fallback` and
    /// `multicast_only` are ignored and the client goes straight to its
    /// cached-target fallback when BDNs fail.
    pub multicast_enabled: bool,
    /// Retry schedule for BDN request retransmission. `None` keeps the
    /// legacy fixed-interval behaviour (every retry waits `ack_timeout`);
    /// `Some` applies capped exponential backoff with jitter *and*
    /// rotates across the configured BDNs round-robin instead of
    /// exhausting each in turn.
    pub backoff: Option<RetryPolicy>,
    /// Selection weights.
    pub weights: SelectionWeights,
    /// Credentials presented with requests (§3).
    pub credentials: Option<Credential>,
    /// A remembered target set from a previous session (§7): pinged
    /// directly when BDNs and multicast both fail.
    pub cached_targets: Vec<NodeId>,
    /// When set, requests to BDNs are signed + encrypted (§9.1).
    pub security: Option<SecuritySuite>,
    /// The requester is itself a broker joining the overlay (§1.1's
    /// second case): the final step opens an overlay **link** to the
    /// chosen broker (`LinkHello`/`LinkAccept`) instead of a client
    /// connection.
    pub join_as_broker: bool,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            bdns: Vec::new(),
            collection_window: Duration::from_secs(4),
            max_responses: 5,
            target_set_size: 10,
            ping_count: 3,
            ping_window: Duration::from_secs(1),
            ack_timeout: Duration::from_secs(1),
            retransmits_per_bdn: 2,
            multicast_fallback: true,
            multicast_only: false,
            multicast_enabled: true,
            backoff: None,
            weights: SelectionWeights::default(),
            credentials: None,
            cached_targets: Vec::new(),
            security: None,
            join_as_broker: false,
        }
    }
}

impl DiscoveryConfig {
    /// Applies overrides from a node configuration file. Recognised keys
    /// (all optional): `discovery.timeout.ms`, `discovery.max_responses`,
    /// `discovery.target_set_size`, `discovery.ping.count`,
    /// `discovery.ping.window.ms`, `discovery.ack.timeout.ms`,
    /// `discovery.retransmits`, `discovery.multicast.fallback`,
    /// `discovery.multicast.only`, `discovery.multicast.enabled`,
    /// the `discovery.backoff.{base.ms,multiplier,cap.ms,jitter}`
    /// group (presence of `base.ms` enables exponential backoff), and
    /// the `selection.weight.*` factors.
    pub fn apply_config(mut self, cfg: &Config) -> Result<Self, ConfigError> {
        self.collection_window = Duration::from_millis(
            cfg.get_u64("discovery.timeout.ms", self.collection_window.as_millis() as u64)?,
        );
        self.max_responses =
            cfg.get_u64("discovery.max_responses", self.max_responses as u64)? as usize;
        self.target_set_size =
            cfg.get_u64("discovery.target_set_size", self.target_set_size as u64)? as usize;
        self.ping_count = cfg.get_u64("discovery.ping.count", u64::from(self.ping_count))? as u32;
        self.ping_window = Duration::from_millis(
            cfg.get_u64("discovery.ping.window.ms", self.ping_window.as_millis() as u64)?,
        );
        self.ack_timeout = Duration::from_millis(
            cfg.get_u64("discovery.ack.timeout.ms", self.ack_timeout.as_millis() as u64)?,
        );
        self.retransmits_per_bdn =
            cfg.get_u64("discovery.retransmits", u64::from(self.retransmits_per_bdn))? as u32;
        self.multicast_fallback =
            cfg.get_bool("discovery.multicast.fallback", self.multicast_fallback)?;
        self.multicast_only = cfg.get_bool("discovery.multicast.only", self.multicast_only)?;
        self.multicast_enabled =
            cfg.get_bool("discovery.multicast.enabled", self.multicast_enabled)?;
        if cfg.get("discovery.backoff.base.ms").is_some() {
            let seed = self.backoff.unwrap_or_else(RetryPolicy::discovery_default);
            self.backoff = Some(RetryPolicy::new(
                Duration::from_millis(
                    cfg.get_u64("discovery.backoff.base.ms", seed.base.as_millis() as u64)?,
                ),
                cfg.get_f64("discovery.backoff.multiplier", seed.multiplier)?,
                Duration::from_millis(
                    cfg.get_u64("discovery.backoff.cap.ms", seed.cap.as_millis() as u64)?,
                ),
                cfg.get_f64("discovery.backoff.jitter", seed.jitter_frac)?,
            ));
        }
        let w = &mut self.weights;
        w.free_to_total_memory =
            cfg.get_f64("selection.weight.free_to_total_memory", w.free_to_total_memory)?;
        w.total_memory_mb = cfg.get_f64("selection.weight.total_memory_mb", w.total_memory_mb)?;
        w.num_links = cfg.get_f64("selection.weight.num_links", w.num_links)?;
        w.connections = cfg.get_f64("selection.weight.connections", w.connections)?;
        w.cpu_load = cfg.get_f64("selection.weight.cpu_load", w.cpu_load)?;
        w.delay_ms = cfg.get_f64("selection.weight.delay_ms", w.delay_ms)?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_bands() {
        let c = DiscoveryConfig::default();
        let window_s = c.collection_window.as_secs_f64();
        assert!((4.0..=5.0).contains(&window_s), "paper: 4-5s window");
        assert!((5..=20).contains(&c.target_set_size), "paper: target set 5-20");
        assert!(c.multicast_fallback);
        assert!(!c.multicast_only);
    }

    #[test]
    fn config_file_overrides() {
        let text = "\
discovery.timeout.ms = 2500
discovery.max_responses = 8
discovery.target_set_size = 6
discovery.ping.count = 5
discovery.multicast.only = true
selection.weight.num_links = 3.5
";
        let parsed = Config::parse(text).unwrap();
        let c = DiscoveryConfig::default().apply_config(&parsed).unwrap();
        assert_eq!(c.collection_window, Duration::from_millis(2500));
        assert_eq!(c.max_responses, 8);
        assert_eq!(c.target_set_size, 6);
        assert_eq!(c.ping_count, 5);
        assert!(c.multicast_only);
        assert!((c.weights.num_links - 3.5).abs() < 1e-12);
        // untouched keys keep defaults
        assert_eq!(c.retransmits_per_bdn, 2);
    }

    #[test]
    fn retry_policy_nominal_is_monotone_and_capped() {
        let p = RetryPolicy::new(Duration::from_millis(500), 2.0, Duration::from_secs(8), 0.2);
        let mut prev = Duration::ZERO;
        for attempt in 0..40 {
            let n = p.nominal(attempt);
            assert!(n >= prev, "nominal must not shrink");
            assert!(n <= Duration::from_secs(8), "nominal must respect cap");
            prev = n;
        }
        assert_eq!(p.nominal(0), Duration::from_millis(500));
        assert_eq!(p.nominal(63), Duration::from_secs(8));
    }

    #[test]
    fn backoff_and_multicast_config_keys() {
        let text = "\
discovery.multicast.enabled = false
discovery.backoff.base.ms = 500
discovery.backoff.multiplier = 3.0
discovery.backoff.cap.ms = 4000
discovery.backoff.jitter = 0.1
";
        let parsed = Config::parse(text).unwrap();
        let c = DiscoveryConfig::default().apply_config(&parsed).unwrap();
        assert!(!c.multicast_enabled);
        let b = c.backoff.expect("backoff enabled by base.ms key");
        assert_eq!(b.base, Duration::from_millis(500));
        assert!((b.multiplier - 3.0).abs() < 1e-12);
        assert_eq!(b.cap, Duration::from_millis(4000));
        assert!((b.jitter_frac - 0.1).abs() < 1e-12);
        // absent keys leave backoff disabled
        let c2 = DiscoveryConfig::default().apply_config(&Config::parse("").unwrap()).unwrap();
        assert!(c2.backoff.is_none());
        assert!(c2.multicast_enabled);
    }

    #[test]
    fn ablation_weight_presets() {
        let p = SelectionWeights::proximity_only();
        assert_eq!(p.free_to_total_memory, 0.0);
        assert!(p.delay_ms > 0.0);
        let l = SelectionWeights::load_only();
        assert_eq!(l.delay_ms, 0.0);
        assert!(l.free_to_total_memory > 0.0);
    }
}

//! The broker-side discovery responder.
//!
//! Handles three duties of a broker participating in discovery:
//!
//! 1. **Answering discovery requests** (paper §5): dedup by request UUID
//!    (the last-1000 cache of §4), consult the [`ResponsePolicy`], then
//!    send a [`nb_wire::DiscoveryResponse`] — NTP timestamp, process
//!    info, usage metrics — over **UDP** directly to the requester.
//! 2. **Answering UDP pings** (paper §6) with pongs echoing the sender's
//!    timestamp.
//! 3. **Listening on the discovery multicast group** (paper §7): a
//!    request received via multicast is answered *and* re-flooded into
//!    the overlay so that "the discovery request would be propagated
//!    through the system".

use std::collections::HashMap;
use std::time::Duration;

use nb_broker::Broker;
use nb_util::{BoundedDedup, Uuid};
use nb_wire::addr::{well_known, DISCOVERY_GROUP};
use nb_wire::message::TransportEndpoint;
use nb_wire::topic::DISCOVERY_REQUEST_TOPIC;
use nb_wire::{
    DiscoveryRequest, DiscoveryResponse, Endpoint, Message, Topic, TransportKind, Wire,
};

use nb_net::{Context, Incoming};

use crate::policy::ResponsePolicy;

/// Timer-token namespace used for delayed responses.
const RESPONDER_TIMER_BASE: u64 = 0x5E50_0000_0000_0000;

/// The responder service embedded in a discovery-enabled broker actor.
#[derive(Debug)]
pub struct Responder {
    policy: ResponsePolicy,
    dedup: BoundedDedup<Uuid>,
    listen_multicast: bool,
    /// Service time before a response leaves the broker: policy check,
    /// metrics collection and serialisation (the paper ran a 2005 JVM).
    /// Each response is delayed by `service_time + U(0, service_time/2)`.
    pub service_time: Duration,
    pending: HashMap<u64, (Endpoint, Message)>,
    next_pending: u64,
    /// The re-flood topic, parsed once at construction so the multicast
    /// receive path never carries a panicking parse (lint rule D004).
    flood_topic: Topic,
    /// Responses actually sent.
    pub responses_sent: u64,
    /// Requests suppressed as duplicates.
    pub duplicates_suppressed: u64,
    /// Requests rejected by policy.
    pub rejected_by_policy: u64,
    /// Pings answered.
    pub pings_answered: u64,
}

impl Responder {
    /// A responder with the given policy and dedup-cache capacity
    /// (paper default: 1000).
    pub fn new(policy: ResponsePolicy, dedup_capacity: usize, listen_multicast: bool) -> Responder {
        Responder {
            policy,
            dedup: BoundedDedup::new(dedup_capacity),
            listen_multicast,
            service_time: Duration::from_millis(40),
            pending: HashMap::new(),
            next_pending: 0,
            flood_topic: crate::well_known_topic(DISCOVERY_REQUEST_TOPIC),
            responses_sent: 0,
            duplicates_suppressed: 0,
            rejected_by_policy: 0,
            pings_answered: 0,
        }
    }

    /// Transports this broker advertises: TCP broker service + UDP ping.
    pub fn transports() -> Vec<TransportEndpoint> {
        vec![
            TransportEndpoint { kind: TransportKind::Tcp, port: well_known::BROKER },
            TransportEndpoint { kind: TransportKind::Udp, port: well_known::PING },
            TransportEndpoint { kind: TransportKind::Multicast, port: well_known::MULTICAST_DISCOVERY },
        ]
    }

    /// Joins the discovery multicast group if configured.
    pub fn on_start(&mut self, ctx: &mut dyn Context) {
        if self.listen_multicast {
            ctx.join_group(DISCOVERY_GROUP);
        }
    }

    /// Offers an incoming runtime event; returns `true` if consumed.
    pub fn handle(&mut self, event: &Incoming, broker: &mut Broker, ctx: &mut dyn Context) -> bool {
        if let Incoming::Timer { token } = event {
            if (token & !0xFFFF_FFFFu64) == RESPONDER_TIMER_BASE {
                if let Some((dest, msg)) = self.pending.remove(token) {
                    ctx.send_udp(well_known::DISCOVERY_REPLY, dest, &msg);
                    self.responses_sent += 1;
                }
                return true;
            }
            return false;
        }
        let Incoming::Datagram { to_port, msg, .. } = event else {
            return false;
        };
        match (*to_port, msg.message()) {
            (p, &Message::Ping { nonce, sent_at, reply_to }) if p == well_known::PING => {
                self.pings_answered += 1;
                let pong = Message::Pong { nonce, echoed_sent_at: sent_at, responder: ctx.me() };
                ctx.send_udp(well_known::PING, reply_to, &pong);
                true
            }
            (p, Message::Discovery(req)) if p == well_known::MULTICAST_DISCOVERY => {
                // Multicast path: answer, then propagate through the
                // overlay on the predefined topic (paper §7).
                let req = req.clone();
                self.reflood(&req, broker, ctx);
                self.on_request(req, broker, ctx);
                true
            }
            _ => false,
        }
    }

    /// Header-peek gate for surfaced flood events (the zero-copy dedup
    /// fast path): reads the nested request's UUID at its fixed body
    /// offset and suppresses the event — without decoding the request —
    /// when it was already handled. State-equivalent to the full-decode
    /// path: `check_and_insert` on a present key does not mutate the
    /// cache, so `contains` plus early-out leaves identical dedup state
    /// and the same suppression count.
    pub fn suppress_flooded(&mut self, event_payload: &[u8]) -> bool {
        match nb_wire::frame::peek_body(event_payload) {
            Ok(h) if h.is_discovery() => {
                let dup = h.uuid.is_some_and(|id| self.dedup.contains(&id));
                if dup {
                    self.duplicates_suppressed += 1;
                }
                dup
            }
            _ => false,
        }
    }

    fn reflood(&mut self, req: &DiscoveryRequest, broker: &mut Broker, ctx: &mut dyn Context) {
        // Only re-flood requests we haven't seen (dedup is checked again
        // in on_request for the response decision; peek here).
        if self.dedup.contains(&req.request_id) {
            return;
        }
        let topic = self.flood_topic.clone();
        let payload = Message::Discovery(req.clone()).to_bytes();
        // Flood-topic events surface back to the owning actor, which
        // routes them to `on_request`; dedup keeps us idempotent.
        let _ = broker.publish_local(topic, payload, ctx);
    }

    /// Processes a discovery request however it arrived (overlay flood or
    /// multicast).
    pub fn on_request(
        &mut self,
        req: DiscoveryRequest,
        broker: &mut Broker,
        ctx: &mut dyn Context,
    ) {
        if !self.dedup.check_and_insert(req.request_id) {
            self.duplicates_suppressed += 1;
            return;
        }
        if !self.policy.permits(&req) {
            self.rejected_by_policy += 1;
            return;
        }
        let metrics = broker.metrics(ctx);
        let response = DiscoveryResponse {
            request_id: req.request_id,
            broker: ctx.me(),
            hostname: broker.config().hostname.clone(),
            realm: ctx.realm(),
            transports: Self::transports(),
            issued_at_utc: ctx.utc_micros(),
            metrics,
        };
        // UDP, per §5.2: cheap for the requester, and loss over long
        // paths naturally filters out distant brokers. The response is
        // stamped now but leaves after the modelled service time, so the
        // requester's delay estimate honestly includes broker processing.
        let msg = Message::Response(response);
        if self.service_time.is_zero() {
            ctx.send_udp(well_known::DISCOVERY_REPLY, req.reply_to, &msg);
            self.responses_sent += 1;
        } else {
            use rand::Rng;
            let jitter = self.service_time.as_nanos() as u64 / 2;
            let extra = if jitter == 0 { 0 } else { ctx.rng().gen_range(0..=jitter) };
            let delay = self.service_time + Duration::from_nanos(extra);
            let token = RESPONDER_TIMER_BASE | (self.next_pending & 0xFFFF_FFFF);
            self.next_pending += 1;
            self.pending.insert(token, (req.reply_to, msg));
            ctx.set_timer(delay, token);
        }
    }

    /// Decodes a surfaced flood-topic event into a request, if it is one.
    pub fn decode_flooded_request(event_payload: &[u8]) -> Option<DiscoveryRequest> {
        match Message::from_bytes(event_payload) {
            Ok(Message::Discovery(req)) => Some(req),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_broker::BrokerConfig;
    use nb_wire::{Credential, NodeId, Port, RealmId};

    // Unit-level tests drive the responder against a scripted context;
    // end-to-end behaviour is covered in the scenario tests.
    struct FakeCtx {
        sent: Vec<(Port, Endpoint, Message)>,
        rng: rand::rngs::StdRng,
        joined: Vec<nb_wire::GroupId>,
        timers: Vec<u64>,
    }

    impl FakeCtx {
        fn new() -> FakeCtx {
            use rand::SeedableRng;
            FakeCtx {
                sent: Vec::new(),
                rng: rand::rngs::StdRng::seed_from_u64(1),
                joined: vec![],
                timers: vec![],
            }
        }
    }

    impl Context for FakeCtx {
        fn me(&self) -> NodeId {
            NodeId(5)
        }
        fn realm(&self) -> RealmId {
            RealmId(2)
        }
        fn now(&self) -> nb_net::SimTime {
            nb_net::SimTime::from_secs(10)
        }
        fn utc_micros(&self) -> u64 {
            123_456_789
        }
        fn clock_synced(&self) -> bool {
            true
        }
        fn raw_local_micros(&self) -> u64 {
            123_456_789
        }
        fn set_clock_estimate_ns(&mut self, _est: i64) {}
        fn send_udp(&mut self, from_port: Port, to: Endpoint, msg: &Message) {
            self.sent.push((from_port, to, msg.clone()));
        }
        fn send_stream(&mut self, from_port: Port, to: Endpoint, msg: &Message) {
            self.sent.push((from_port, to, msg.clone()));
        }
        fn send_multicast(
            &mut self,
            _from_port: Port,
            _group: nb_wire::GroupId,
            _to_port: Port,
            _msg: &Message,
        ) {
        }
        fn join_group(&mut self, group: nb_wire::GroupId) {
            self.joined.push(group);
        }
        fn leave_group(&mut self, _group: nb_wire::GroupId) {}
        fn set_timer(&mut self, _delay: std::time::Duration, token: u64) {
            self.timers.push(token);
        }
        fn cancel_timer(&mut self, _token: u64) {}
        fn rng(&mut self) -> &mut dyn rand::RngCore {
            &mut self.rng
        }
    }

    fn request(id: u128) -> DiscoveryRequest {
        DiscoveryRequest {
            request_id: Uuid::from_u128(id),
            requester: NodeId(9),
            hostname: "client".into(),
            realm: RealmId(0),
            reply_to: Endpoint::new(NodeId(9), well_known::DISCOVERY_REPLY),
            transports: vec![],
            credentials: None,
            issued_at_utc: 7,
        }
    }

    #[test]
    fn responds_once_per_request_id() {
        let mut r = Responder::new(ResponsePolicy::open(), 1000, false);
        r.service_time = Duration::ZERO;
        let mut broker = Broker::new(BrokerConfig::default());
        let mut ctx = FakeCtx::new();
        r.on_request(request(1), &mut broker, &mut ctx);
        r.on_request(request(1), &mut broker, &mut ctx);
        r.on_request(request(2), &mut broker, &mut ctx);
        assert_eq!(r.responses_sent, 2);
        assert_eq!(r.duplicates_suppressed, 1);
        assert_eq!(ctx.sent.len(), 2);
        let Message::Response(resp) = &ctx.sent[0].2 else {
            panic!("expected response");
        };
        assert_eq!(resp.request_id, Uuid::from_u128(1));
        assert_eq!(resp.broker, NodeId(5));
        assert_eq!(resp.issued_at_utc, 123_456_789);
        assert!(resp.port_for(TransportKind::Tcp).is_some());
    }

    #[test]
    fn policy_rejection_counts_and_sends_nothing() {
        let mut r = Responder::new(
            ResponsePolicy::principals(vec!["alice".into()]),
            1000,
            false,
        );
        r.service_time = Duration::ZERO;
        let mut broker = Broker::new(BrokerConfig::default());
        let mut ctx = FakeCtx::new();
        r.on_request(request(1), &mut broker, &mut ctx); // no credentials
        assert_eq!(r.rejected_by_policy, 1);
        assert_eq!(r.responses_sent, 0);
        assert!(ctx.sent.is_empty());
        let mut ok = request(2);
        ok.credentials = Some(Credential { principal: "alice".into(), token: vec![] });
        r.on_request(ok, &mut broker, &mut ctx);
        assert_eq!(r.responses_sent, 1);
    }

    #[test]
    fn answers_pings_with_echoed_timestamp() {
        let mut r = Responder::new(ResponsePolicy::open(), 10, false);
        let mut broker = Broker::new(BrokerConfig::default());
        let mut ctx = FakeCtx::new();
        let consumed = r.handle(
            &Incoming::Datagram {
                from: Endpoint::new(NodeId(9), well_known::PING),
                to_port: well_known::PING,
                msg: Message::Ping {
                    nonce: 44,
                    sent_at: 9_000,
                    reply_to: Endpoint::new(NodeId(9), well_known::PING),
                }
                .into(),
            },
            &mut broker,
            &mut ctx,
        );
        assert!(consumed);
        assert_eq!(r.pings_answered, 1);
        let Message::Pong { nonce, echoed_sent_at, responder } = &ctx.sent[0].2 else {
            panic!("expected pong");
        };
        assert_eq!((*nonce, *echoed_sent_at, *responder), (44, 9_000, NodeId(5)));
    }

    #[test]
    fn multicast_request_answered_and_reflooded() {
        let mut r = Responder::new(ResponsePolicy::open(), 10, true);
        r.service_time = Duration::ZERO;
        let mut broker = Broker::new(BrokerConfig::default());
        let mut ctx = FakeCtx::new();
        r.on_start(&mut ctx);
        assert_eq!(ctx.joined, vec![DISCOVERY_GROUP]);
        let consumed = r.handle(
            &Incoming::Datagram {
                from: Endpoint::new(NodeId(9), well_known::MULTICAST_DISCOVERY),
                to_port: well_known::MULTICAST_DISCOVERY,
                msg: Message::Discovery(request(3)).into(),
            },
            &mut broker,
            &mut ctx,
        );
        assert!(consumed);
        assert_eq!(r.responses_sent, 1);
        // With no links the reflood sends nothing over the wire, but the
        // broker must have routed the event locally exactly once.
        assert_eq!(broker.events_routed, 1);
    }

    #[test]
    fn non_discovery_traffic_not_consumed() {
        let mut r = Responder::new(ResponsePolicy::open(), 10, false);
        let mut broker = Broker::new(BrokerConfig::default());
        let mut ctx = FakeCtx::new();
        let consumed = r.handle(
            &Incoming::Datagram {
                from: Endpoint::new(NodeId(1), Port(9)),
                to_port: Port(9),
                msg: Message::Heartbeat { from: NodeId(1), seq: 0 }.into(),
            },
            &mut broker,
            &mut ctx,
        );
        assert!(!consumed);
        assert!(!r.handle(&Incoming::Timer { token: 1 }, &mut broker, &mut ctx));
    }

    #[test]
    fn service_time_delays_the_response_until_the_timer() {
        let mut r = Responder::new(ResponsePolicy::open(), 10, false);
        assert!(!r.service_time.is_zero(), "delayed by default");
        let mut broker = Broker::new(BrokerConfig::default());
        let mut ctx = FakeCtx::new();
        r.on_request(request(9), &mut broker, &mut ctx);
        assert_eq!(r.responses_sent, 0, "nothing on the wire yet");
        assert!(ctx.sent.is_empty());
        assert_eq!(ctx.timers.len(), 1);
        let token = ctx.timers[0];
        let consumed = r.handle(&Incoming::Timer { token }, &mut broker, &mut ctx);
        assert!(consumed);
        assert_eq!(r.responses_sent, 1);
        assert!(matches!(ctx.sent[0].2, Message::Response(_)));
        // A stale/duplicate firing is consumed but sends nothing more.
        assert!(r.handle(&Incoming::Timer { token }, &mut broker, &mut ctx));
        assert_eq!(r.responses_sent, 1);
        // Foreign timers are not consumed.
        assert!(!r.handle(&Incoming::Timer { token: 1 }, &mut broker, &mut ctx));
    }

    #[test]
    fn decode_flooded_request_roundtrip() {
        let req = request(5);
        let payload = Message::Discovery(req.clone()).to_bytes();
        assert_eq!(Responder::decode_flooded_request(&payload), Some(req));
        assert_eq!(Responder::decode_flooded_request(b"junk"), None);
    }
}

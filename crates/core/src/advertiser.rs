//! Broker advertisement dissemination.
//!
//! Paper §2: brokers "advertise and register their presence with one or
//! more of these BDNs" — either **directly** (the BDNs listed in the
//! broker's configuration file) or by publishing on the well-known
//! **advertisement topic** all BDNs subscribe to. Advertisements may be
//! lost (§7), so they are re-issued periodically. When a **private BDN**
//! announces itself on the BDN-advertisement topic (§2.4), brokers may
//! re-advertise to it.

use std::time::Duration;

use nb_broker::Broker;
use nb_wire::addr::well_known;
use nb_wire::topic::BROKER_ADVERTISEMENT_TOPIC;
use nb_wire::{BrokerAdvertisement, Endpoint, Message, NodeId, Topic, Wire};

use nb_net::{Context, Incoming};

use crate::responder::Responder;

const TIMER_READVERTISE: u64 = 0xAD00_0000_0000_0001;

/// The advertisement service embedded in a discovery-enabled broker.
#[derive(Debug)]
pub struct Advertiser {
    /// BDNs advertised to directly (from the broker configuration file).
    bdns: Vec<NodeId>,
    /// Also publish advertisements on the well-known topic.
    use_topic: bool,
    /// Re-advertisement period (ads are fire-and-forget and can be lost).
    readvertise: Duration,
    /// Optional geographical information for the advertisement.
    pub geography: Option<String>,
    /// Optional institutional information.
    pub institution: Option<String>,
    /// Advertisements issued (direct sends + topic publishes).
    pub ads_sent: u64,
    /// Private BDNs discovered at runtime via BDN advertisements.
    pub discovered_bdns: Vec<NodeId>,
}

impl Advertiser {
    /// Advertises to `bdns` directly every `readvertise`; also publishes
    /// on the advertisement topic when `use_topic`.
    pub fn new(bdns: Vec<NodeId>, use_topic: bool, readvertise: Duration) -> Advertiser {
        Advertiser {
            bdns,
            use_topic,
            readvertise,
            geography: None,
            institution: None,
            ads_sent: 0,
            discovered_bdns: Vec::new(),
        }
    }

    /// Changes the re-advertisement heartbeat period. The new period
    /// takes effect when the current timer fires; existing timers are
    /// not rescheduled. Leases at the BDN expire after its `ad_ttl`, so
    /// this must stay comfortably below that TTL for the broker to
    /// remain discoverable.
    pub fn set_readvertise(&mut self, period: Duration) {
        self.readvertise = period;
    }

    /// The current re-advertisement heartbeat period.
    pub fn readvertise(&self) -> Duration {
        self.readvertise
    }

    /// The BDNs currently advertised to (configured + discovered).
    pub fn all_bdns(&self) -> Vec<NodeId> {
        let mut out = self.bdns.clone();
        out.extend(self.discovered_bdns.iter().copied());
        out
    }

    /// Adds federated peer BDNs to the configured set (dedup against
    /// both the configured and the discovered lists). Advertising to
    /// every federation member keeps each origin stamp identical across
    /// registries, which is what lets anti-entropy digests agree.
    pub fn add_federated_bdns(&mut self, peers: &[NodeId]) {
        for &peer in peers {
            if !self.bdns.contains(&peer) && !self.discovered_bdns.contains(&peer) {
                self.bdns.push(peer);
            }
        }
    }

    /// Builds this broker's advertisement.
    pub fn build_ad(&self, broker: &Broker, ctx: &mut dyn Context) -> BrokerAdvertisement {
        BrokerAdvertisement {
            broker: ctx.me(),
            hostname: broker.config().hostname.clone(),
            logical_address: broker.config().logical_address.clone(),
            realm: ctx.realm(),
            transports: Responder::transports(),
            geography: self.geography.clone(),
            institution: self.institution.clone(),
            issued_at_utc: ctx.utc_micros(),
        }
    }

    /// Issues the advertisement now: direct UDP to every known BDN, plus
    /// a topic publish when configured.
    pub fn advertise(&mut self, broker: &mut Broker, ctx: &mut dyn Context) {
        let ad = self.build_ad(broker, ctx);
        for bdn in self.all_bdns() {
            ctx.send_udp(
                well_known::BROKER,
                Endpoint::new(bdn, well_known::BDN),
                &Message::Advertisement(ad.clone()),
            );
            self.ads_sent += 1;
        }
        if self.use_topic {
            let topic = Topic::parse(BROKER_ADVERTISEMENT_TOPIC).expect("well-known topic");
            let payload = Message::Advertisement(ad).to_bytes();
            let _ = broker.publish_local(topic, payload, ctx);
            self.ads_sent += 1;
        }
    }

    /// Call from the owning actor's `on_start`.
    pub fn on_start(&mut self, broker: &mut Broker, ctx: &mut dyn Context) {
        self.advertise(broker, ctx);
        ctx.set_timer(self.readvertise, TIMER_READVERTISE);
    }

    /// Offers an incoming runtime event; returns `true` if consumed.
    pub fn handle(&mut self, event: &Incoming, broker: &mut Broker, ctx: &mut dyn Context) -> bool {
        match event {
            Incoming::Timer { token } if *token == TIMER_READVERTISE => {
                self.advertise(broker, ctx);
                ctx.set_timer(self.readvertise, TIMER_READVERTISE);
                true
            }
            // Re-advertise with a fresh (synced) timestamp as soon as the
            // NTP service completes.
            Incoming::ClockSynced => {
                self.advertise(broker, ctx);
                false // others may care about ClockSynced too
            }
            _ => false,
        }
    }

    /// A private BDN announced itself (paper §2.4): remember it and
    /// re-advertise immediately.
    pub fn on_bdn_advertisement(
        &mut self,
        bdn: NodeId,
        broker: &mut Broker,
        ctx: &mut dyn Context,
    ) {
        if self.bdns.contains(&bdn) || self.discovered_bdns.contains(&bdn) {
            return;
        }
        self.discovered_bdns.push(bdn);
        self.advertise(broker, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_broker::BrokerConfig;
    use nb_wire::{Port, RealmId};

    struct FakeCtx {
        sent: Vec<(Endpoint, Message)>,
        timers: Vec<u64>,
        rng: rand::rngs::StdRng,
    }

    impl FakeCtx {
        fn new() -> FakeCtx {
            use rand::SeedableRng;
            FakeCtx { sent: vec![], timers: vec![], rng: rand::rngs::StdRng::seed_from_u64(2) }
        }
    }

    impl Context for FakeCtx {
        fn me(&self) -> NodeId {
            NodeId(7)
        }
        fn realm(&self) -> RealmId {
            RealmId(3)
        }
        fn now(&self) -> nb_net::SimTime {
            nb_net::SimTime::from_secs(1)
        }
        fn utc_micros(&self) -> u64 {
            42
        }
        fn clock_synced(&self) -> bool {
            true
        }
        fn raw_local_micros(&self) -> u64 {
            42
        }
        fn set_clock_estimate_ns(&mut self, _est: i64) {}
        fn send_udp(&mut self, _from: Port, to: Endpoint, msg: &Message) {
            self.sent.push((to, msg.clone()));
        }
        fn send_stream(&mut self, _from: Port, to: Endpoint, msg: &Message) {
            self.sent.push((to, msg.clone()));
        }
        fn send_multicast(
            &mut self,
            _f: Port,
            _g: nb_wire::GroupId,
            _t: Port,
            _m: &Message,
        ) {
        }
        fn join_group(&mut self, _g: nb_wire::GroupId) {}
        fn leave_group(&mut self, _g: nb_wire::GroupId) {}
        fn set_timer(&mut self, _d: Duration, token: u64) {
            self.timers.push(token);
        }
        fn cancel_timer(&mut self, _t: u64) {}
        fn rng(&mut self) -> &mut dyn rand::RngCore {
            &mut self.rng
        }
    }

    #[test]
    fn advertises_to_every_configured_bdn_on_start() {
        let mut adv = Advertiser::new(vec![NodeId(100), NodeId(101)], false, Duration::from_secs(60));
        let mut broker = Broker::new(BrokerConfig::default());
        let mut ctx = FakeCtx::new();
        adv.on_start(&mut broker, &mut ctx);
        assert_eq!(adv.ads_sent, 2);
        assert_eq!(ctx.sent.len(), 2);
        for (to, msg) in &ctx.sent {
            assert_eq!(to.port, well_known::BDN);
            let Message::Advertisement(ad) = msg else { panic!("expected ad") };
            assert_eq!(ad.broker, NodeId(7));
            assert_eq!(ad.realm, RealmId(3));
            assert_eq!(ad.issued_at_utc, 42);
        }
        assert_eq!(ctx.timers, vec![TIMER_READVERTISE]);
    }

    #[test]
    fn readvertise_timer_consumed_and_rearmed() {
        let mut adv = Advertiser::new(vec![NodeId(100)], false, Duration::from_secs(60));
        let mut broker = Broker::new(BrokerConfig::default());
        let mut ctx = FakeCtx::new();
        let consumed =
            adv.handle(&Incoming::Timer { token: TIMER_READVERTISE }, &mut broker, &mut ctx);
        assert!(consumed);
        assert_eq!(adv.ads_sent, 1);
        assert_eq!(ctx.timers, vec![TIMER_READVERTISE]);
        // unrelated timers untouched
        assert!(!adv.handle(&Incoming::Timer { token: 5 }, &mut broker, &mut ctx));
    }

    #[test]
    fn topic_publication_counts() {
        let mut adv = Advertiser::new(vec![], true, Duration::from_secs(60));
        let mut broker = Broker::new(BrokerConfig::default());
        let mut ctx = FakeCtx::new();
        adv.advertise(&mut broker, &mut ctx);
        assert_eq!(adv.ads_sent, 1);
        assert_eq!(broker.events_routed, 1, "topic ad routed through the broker");
    }

    #[test]
    fn private_bdn_discovery_triggers_readvertisement() {
        let mut adv = Advertiser::new(vec![NodeId(100)], false, Duration::from_secs(60));
        let mut broker = Broker::new(BrokerConfig::default());
        let mut ctx = FakeCtx::new();
        adv.on_bdn_advertisement(NodeId(200), &mut broker, &mut ctx);
        assert_eq!(adv.discovered_bdns, vec![NodeId(200)]);
        // Re-advertisement went to both the configured and the new BDN.
        assert_eq!(adv.ads_sent, 2);
        // Duplicate announcements are ignored.
        adv.on_bdn_advertisement(NodeId(200), &mut broker, &mut ctx);
        assert_eq!(adv.discovered_bdns.len(), 1);
        assert_eq!(adv.ads_sent, 2);
        // Known/configured BDNs are not re-added.
        adv.on_bdn_advertisement(NodeId(100), &mut broker, &mut ctx);
        assert!(adv.discovered_bdns.len() == 1);
    }

    #[test]
    fn federated_bdns_merge_without_duplicates() {
        let mut adv = Advertiser::new(vec![NodeId(100)], false, Duration::from_secs(60));
        let mut broker = Broker::new(BrokerConfig::default());
        let mut ctx = FakeCtx::new();
        adv.on_bdn_advertisement(NodeId(200), &mut broker, &mut ctx);
        adv.add_federated_bdns(&[NodeId(100), NodeId(200), NodeId(101), NodeId(101)]);
        assert_eq!(adv.all_bdns(), vec![NodeId(100), NodeId(101), NodeId(200)]);
        adv.advertise(&mut broker, &mut ctx);
        assert_eq!(adv.ads_sent as usize, 2 + 3, "one ad per federated BDN");
    }

    #[test]
    fn clock_sync_triggers_fresh_ad_but_is_not_consumed() {
        let mut adv = Advertiser::new(vec![NodeId(100)], false, Duration::from_secs(60));
        let mut broker = Broker::new(BrokerConfig::default());
        let mut ctx = FakeCtx::new();
        assert!(!adv.handle(&Incoming::ClockSynced, &mut broker, &mut ctx));
        assert_eq!(adv.ads_sent, 1);
    }
}

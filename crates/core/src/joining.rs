//! A broker that joins the overlay through discovery.
//!
//! The problem statement's second case (§1.1): *"an entity may wish to
//! add a broker to this network. In both these cases it is essential for
//! the entity to discover a broker"*. A [`JoiningBroker`] is a full
//! discovery-enabled broker whose embedded finder runs the discovery
//! protocol and then opens an **overlay link** to the chosen broker —
//! after which the newcomer participates in routing, floods discovery
//! requests, answers them, and (per §8.3) is preferentially selected by
//! subsequent discoveries thanks to its fresh usage metrics.

use std::time::Duration;

use nb_broker::BrokerConfig;
use nb_wire::NodeId;

use nb_net::{impl_actor_any, Actor, Context, Incoming};

use crate::broker_actor::DiscoveryBrokerActor;
use crate::client::{DiscoveryClient, Phase};
use crate::config::DiscoveryConfig;
use crate::policy::ResponsePolicy;

const TIMER_HEAL: u64 = 0x4EA1_0000_0000_0001;
const HEAL_CHECK: Duration = Duration::from_secs(5);

/// A broker that finds its attachment point via discovery.
pub struct JoiningBroker {
    /// The full broker (routing + responder + advertiser).
    pub inner: DiscoveryBrokerActor,
    /// The embedded discovery state machine, configured with
    /// `join_as_broker = true`.
    finder: DiscoveryClient,
    /// The broker this node linked to, once joined.
    pub joined_to: Option<NodeId>,
    /// Self-healing: when the established link count drops below this,
    /// discovery runs again and a fresh overlay link is opened (§8.3's
    /// "incorporation of brokers" applied to partition repair). `0`
    /// disables healing.
    pub heal_below: u32,
    /// Healing rounds performed.
    pub heals: u64,
    /// Set once the first join succeeds; healing retries (including
    /// after failed heal attempts) are gated on this, not on the
    /// transient `joined_to`.
    ever_joined: bool,
}

impl JoiningBroker {
    /// A joining broker: `cfg`/`bdns`/`policy` configure the broker side
    /// (it advertises to `bdns` once up), `discovery` drives the join.
    /// `discovery.join_as_broker` is forced on.
    pub fn new(
        cfg: BrokerConfig,
        bdns: Vec<NodeId>,
        policy: ResponsePolicy,
        mut discovery: DiscoveryConfig,
    ) -> JoiningBroker {
        discovery.join_as_broker = true;
        JoiningBroker {
            inner: DiscoveryBrokerActor::new(cfg, bdns, policy),
            finder: DiscoveryClient::new(discovery),
            joined_to: None,
            heal_below: 1,
            heals: 0,
            ever_joined: false,
        }
    }

    /// Whether the join completed.
    pub fn joined(&self) -> bool {
        self.joined_to.is_some()
    }

    /// The embedded finder (observability).
    pub fn finder(&self) -> &DiscoveryClient {
        &self.finder
    }

    fn check_join(&mut self) {
        if self.joined_to.is_none() && self.finder.phase() == Phase::Done {
            self.joined_to = self.finder.outcome().and_then(|o| o.chosen);
            if self.joined_to.is_some() {
                self.ever_joined = true;
            }
        }
    }

    fn heal_tick(&mut self, ctx: &mut dyn Context) {
        if self.heal_below > 0
            && self.inner.broker.num_links() < self.heal_below
            && matches!(self.finder.phase(), Phase::Idle | Phase::Done | Phase::Failed)
            && self.ever_joined
        {
            // We had joined once but the overlay has since shrunk under
            // us: rediscover and re-link.
            self.heals += 1;
            self.joined_to = None;
            self.finder.begin(ctx);
        }
        ctx.set_timer(HEAL_CHECK, TIMER_HEAL);
    }
}

impl Actor for JoiningBroker {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        self.inner.on_start(ctx);
        self.finder.on_start(ctx);
        ctx.set_timer(HEAL_CHECK, TIMER_HEAL);
    }

    fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
        if matches!(event, Incoming::Timer { token: TIMER_HEAL }) {
            self.heal_tick(ctx);
            return;
        }
        // Both halves see every event: the finder consumes discovery
        // traffic (acks, responses, pongs, the LinkAccept that seals the
        // join), the broker half consumes overlay traffic — including
        // that same LinkAccept, which establishes its side of the link.
        self.finder.on_incoming(event.clone(), ctx);
        self.check_join();
        self.inner.on_incoming(event, ctx);
    }

    impl_actor_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdn::{Bdn, BdnConfig};
    use nb_broker::MachineProfile;
    use nb_net::{ClockProfile, LinkSpec, Sim};
    use nb_wire::RealmId;
    use std::time::Duration;

    fn discovery_cfg(bdn: NodeId) -> DiscoveryConfig {
        DiscoveryConfig {
            bdns: vec![bdn],
            collection_window: Duration::from_millis(1200),
            max_responses: 2,
            ping_window: Duration::from_millis(400),
            ack_timeout: Duration::from_millis(500),
            ..DiscoveryConfig::default()
        }
    }

    #[test]
    fn a_new_broker_discovers_and_links_into_the_overlay() {
        let mut sim = Sim::with_clock_profile(81, ClockProfile::perfect());
        sim.network_mut().intra_realm_spec = LinkSpec::lan().with_loss(0.0);
        sim.network_mut().inter_realm_spec =
            LinkSpec::wan(Duration::from_millis(10)).with_loss(0.0);
        let bdn = sim.add_node("bdn", RealmId(0), Box::new(Bdn::new(BdnConfig::default())));
        let b0 = sim.add_node(
            "b0",
            RealmId(0),
            Box::new(DiscoveryBrokerActor::new(
                BrokerConfig { hostname: "b0".into(), ..BrokerConfig::default() },
                vec![bdn],
                ResponsePolicy::open(),
            )),
        );
        let _b1 = sim.add_node(
            "b1",
            RealmId(1), // farther away
            Box::new(DiscoveryBrokerActor::new(
                BrokerConfig {
                    hostname: "b1".into(),
                    neighbors: vec![b0],
                    ..BrokerConfig::default()
                },
                vec![bdn],
                ResponsePolicy::open(),
            )),
        );
        sim.run_for(Duration::from_secs(2));

        // The newcomer joins from the same realm as b0.
        let newcomer = sim.add_node(
            "newcomer",
            RealmId(0),
            Box::new(JoiningBroker::new(
                BrokerConfig {
                    hostname: "new.broker".into(),
                    machine: MachineProfile::default_2005(),
                    ..BrokerConfig::default()
                },
                vec![bdn],
                ResponsePolicy::open(),
                discovery_cfg(bdn),
            )),
        );
        sim.run_for(Duration::from_secs(8));

        let joining = sim.actor::<JoiningBroker>(newcomer).unwrap();
        assert!(joining.joined(), "join completed (finder {:?})", joining.finder().phase());
        assert_eq!(joining.joined_to, Some(b0), "linked to the nearest broker");
        assert!(joining.inner.broker.is_linked(b0), "overlay link up on the newcomer's side");
        let b0_actor = sim.actor::<DiscoveryBrokerActor>(b0).unwrap();
        assert!(b0_actor.broker.is_linked(newcomer), "…and on the existing broker's side");

        // The newcomer now participates in discovery: a later client run
        // receives a response from it too.
        use crate::client::DiscoveryClient;
        let client = sim.add_node(
            "client",
            RealmId(0),
            Box::new(DiscoveryClient::with_auto_start(
                DiscoveryConfig { max_responses: 3, ..discovery_cfg(bdn) },
                true,
            )),
        );
        sim.run_for(Duration::from_secs(6));
        let outcome = sim
            .actor::<DiscoveryClient>(client)
            .unwrap()
            .outcome()
            .cloned()
            .expect("client discovery finished");
        assert_eq!(outcome.responses_received, 3, "the newcomer answered as well");
        assert!(outcome.chosen.is_some());
    }
}

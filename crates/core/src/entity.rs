//! The entity facade: the full life cycle the paper motivates.
//!
//! §1.2: *"The brokering environment … is a very dynamic and fluid
//! system where broker processes may join and leave the broker network
//! at arbitrary times … It is thus not possible for any entity to assume
//! that a given broker may be available indefinitely."*
//!
//! An [`Entity`] is what a downstream application actually runs: it
//! discovers the best broker (embedding a [`DiscoveryClient`]), attaches
//! to it, registers its subscriptions, publishes queued events, monitors
//! the broker with UDP keepalive pings, and — when the broker stops
//! answering — **rediscovers** and reattaches, transparently resuming
//! its subscriptions.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use nb_util::{BoundedDedup, Uuid};
use nb_wire::addr::well_known;
use nb_wire::{Endpoint, Event, Message, NodeId, Topic, TopicFilter};

use nb_net::{impl_actor_any, Actor, Context, Incoming, SimTime};

use crate::client::{DiscoveryClient, Phase};
use crate::config::{DiscoveryConfig, RetryPolicy};

const TIMER_KEEPALIVE: u64 = 0xE171_0000_0000_0001;
const TIMER_FLUSH: u64 = 0xE171_0000_0000_0002;
const TIMER_START_DELAY: u64 = 0xE171_0000_0000_0003;
/// Discovery-client timers live in this namespace (see `client.rs`).
const DISCOVERY_TIMER_PREFIX: u64 = 0xD15C_0000_0000_0000;

/// Where the entity is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityState {
    /// Running (or about to run) broker discovery.
    Discovering,
    /// Attached to a broker and exchanging events.
    Attached(NodeId),
    /// Discovery exhausted every path; will retry after a backoff.
    Stranded,
}

/// A messaging entity: discovery + attachment + pub/sub + failover.
pub struct Entity {
    discovery: DiscoveryClient,
    filters: Vec<TopicFilter>,
    state: EntityState,
    outbox: VecDeque<(Topic, Vec<u8>)>,
    keepalive_interval: Duration,
    keepalive_misses: u32,
    /// Outbox drain cadence while attached. The 50 ms default is right
    /// for a handful of chatty entities; the scale suite stretches it so
    /// 1e5+ mostly-idle entities do not each contribute 20 timer events
    /// per virtual second to the engine.
    flush_interval: Duration,
    /// When set, `on_start` arms a one-shot timer for this delay instead
    /// of discovering immediately — the scale campaign staggers entity
    /// start-up so 1e5 discoveries do not land on the same instant.
    start_delay: Option<Duration>,
    /// Stranded-retry schedule: capped exponential with jitter, so a
    /// fleet of entities stranded by the same outage desynchronises its
    /// re-discovery attempts instead of producing a retry storm.
    retry_policy: RetryPolicy,
    /// Consecutive failed discovery runs since the last attachment.
    retry_attempt: u32,
    /// Suppresses re-deliveries of events already seen: a broker that
    /// survives a restart with its subscription table intact keeps
    /// forwarding to an entity that has since failed over elsewhere, so
    /// the entity can briefly be subscribed at two brokers at once.
    dedup: BoundedDedup<Uuid>,
    last_heard: SimTime,
    ping_nonces: HashMap<u64, SimTime>,
    next_nonce: u64,
    missed: u32,
    /// Events delivered to this entity.
    pub received: Vec<Event>,
    /// Events published.
    pub published: u64,
    /// Every broker this entity has attached to, in order.
    pub attachments: Vec<NodeId>,
    /// Failovers performed (keepalive losses leading to rediscovery).
    pub failovers: u64,
    /// Duplicate event deliveries suppressed by the dedup cache.
    pub duplicates_dropped: u64,
    /// Inconsistent internal state observed on a receive path (counted
    /// instead of panicking; lint rule D004).
    pub internal_errors: u64,
}

impl Entity {
    /// An entity using `cfg` for discovery and subscribing to `filters`
    /// once attached.
    pub fn new(cfg: DiscoveryConfig, filters: Vec<TopicFilter>) -> Entity {
        Entity {
            discovery: DiscoveryClient::new(cfg),
            filters,
            state: EntityState::Discovering,
            outbox: VecDeque::new(),
            keepalive_interval: Duration::from_secs(2),
            keepalive_misses: 3,
            flush_interval: Duration::from_millis(50),
            start_delay: None,
            // First retry ~5 s (the historical fixed backoff), doubling
            // to a 60 s cap with ±10% jitter.
            retry_policy: RetryPolicy::new(
                Duration::from_secs(5),
                2.0,
                Duration::from_secs(60),
                0.1,
            ),
            retry_attempt: 0,
            dedup: BoundedDedup::new(1000),
            last_heard: SimTime::ZERO,
            ping_nonces: HashMap::new(),
            next_nonce: 1,
            missed: 0,
            received: Vec::new(),
            published: 0,
            attachments: Vec::new(),
            failovers: 0,
            duplicates_dropped: 0,
            internal_errors: 0,
        }
    }

    /// Current life-cycle state.
    pub fn state(&self) -> EntityState {
        self.state
    }

    /// The broker currently attached to, if any.
    pub fn broker(&self) -> Option<NodeId> {
        match self.state {
            EntityState::Attached(b) => Some(b),
            _ => None,
        }
    }

    /// The embedded discovery client (read-only observability).
    pub fn discovery(&self) -> &DiscoveryClient {
        &self.discovery
    }

    /// Mutable discovery configuration (harness tuning before traffic
    /// flows, e.g. enabling request backoff or disabling multicast).
    pub fn discovery_config_mut(&mut self) -> &mut DiscoveryConfig {
        self.discovery.config_mut()
    }

    /// Replaces the stranded-retry backoff policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry_policy = policy;
    }

    /// Overrides the keepalive ping cadence (default 2 s). Population
    /// knob: at 1e5 entities the default is 5e4 pings per virtual
    /// second; failure detection latency scales with it accordingly.
    pub fn set_keepalive_interval(&mut self, interval: Duration) {
        self.keepalive_interval = interval;
    }

    /// Overrides the outbox drain cadence (default 50 ms); see
    /// [`Entity::set_keepalive_interval`] for the population rationale.
    pub fn set_flush_interval(&mut self, interval: Duration) {
        self.flush_interval = interval;
    }

    /// Delays the initial discovery by `delay` after start (staggered
    /// ramp-up for population runs). Only affects the first discovery;
    /// failover rediscovery is immediate as ever. Call before the actor
    /// starts: the embedded discovery client is rebuilt without
    /// auto-start so the one-shot timer is the sole trigger.
    pub fn set_start_delay(&mut self, delay: Duration) {
        self.start_delay = Some(delay);
        let cfg = self.discovery.config_mut().clone();
        self.discovery = DiscoveryClient::with_auto_start(cfg, false);
    }

    /// Replaces the receive-dedup cache with one of `capacity`, pre-sized
    /// for `expected` keys (see [`BoundedDedup::with_expected`]). Call
    /// before traffic flows: the cache contents are reset.
    pub fn set_dedup_capacity(&mut self, capacity: usize, expected: usize) {
        self.dedup = BoundedDedup::with_expected(capacity, expected);
    }

    /// Extends the discovery client's BDN rotation with federated peers
    /// (see [`DiscoveryClient::federate_bdns`]): entity discovery then
    /// survives the loss of every originally-configured BDN.
    pub fn federate_bdns(&mut self, peers: &[NodeId]) {
        self.discovery.federate_bdns(peers);
    }

    /// Queues an event for publication (flushed while attached).
    pub fn queue_publish(&mut self, topic: Topic, payload: Vec<u8>) {
        self.outbox.push_back((topic, payload));
    }

    fn broker_endpoint(&self) -> Option<Endpoint> {
        self.broker().map(|b| Endpoint::new(b, well_known::BROKER))
    }

    fn on_attached(&mut self, broker: NodeId, ctx: &mut dyn Context) {
        // Best-effort unsubscribe at the previous broker: it may have
        // survived (or been revived) with our subscription intact and
        // would otherwise keep forwarding. The dedup cache below covers
        // the cases where this message cannot land.
        if let Some(&old) = self.attachments.last() {
            if old != broker {
                let ep = Endpoint::new(old, well_known::BROKER);
                for filter in self.filters.clone() {
                    ctx.send_stream(
                        well_known::BROKER,
                        ep,
                        &Message::ClientUnsubscribe { filter },
                    );
                }
            }
        }
        self.state = EntityState::Attached(broker);
        self.attachments.push(broker);
        self.last_heard = ctx.now();
        self.missed = 0;
        self.retry_attempt = 0;
        self.ping_nonces.clear();
        let ep = Endpoint::new(broker, well_known::BROKER);
        for filter in self.filters.clone() {
            ctx.send_stream(well_known::BROKER, ep, &Message::ClientSubscribe { filter });
        }
        self.flush(ctx);
        ctx.set_timer(self.keepalive_interval, TIMER_KEEPALIVE);
        ctx.set_timer(self.flush_interval, TIMER_FLUSH);
    }

    fn flush(&mut self, ctx: &mut dyn Context) {
        let Some(ep) = self.broker_endpoint() else {
            return;
        };
        while let Some((topic, payload)) = self.outbox.pop_front() {
            let ev =
                Event { id: Uuid::random(ctx.rng()), topic, source: ctx.me(), payload: payload.into() };
            ctx.send_stream(well_known::BROKER, ep, &Message::Publish(ev));
            self.published += 1;
        }
    }

    fn keepalive_tick(&mut self, ctx: &mut dyn Context) {
        let EntityState::Attached(broker) = self.state else {
            return;
        };
        // Count an outstanding unanswered ping as a miss.
        if !self.ping_nonces.is_empty() {
            self.missed += 1;
            self.ping_nonces.clear();
        }
        if self.missed >= self.keepalive_misses {
            // The broker is gone (§1.2): rediscover.
            self.failovers += 1;
            self.state = EntityState::Discovering;
            self.discovery.begin(ctx);
            return;
        }
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.ping_nonces.insert(nonce, ctx.now());
        let ping = Message::Ping {
            nonce,
            sent_at: ctx.now().as_micros(),
            reply_to: Endpoint::new(ctx.me(), well_known::PING),
        };
        ctx.send_udp(well_known::PING, Endpoint::new(broker, well_known::PING), &ping);
        ctx.set_timer(self.keepalive_interval, TIMER_KEEPALIVE);
    }

    fn check_discovery_progress(&mut self, ctx: &mut dyn Context) {
        if self.state != EntityState::Discovering {
            return; // only act on a discovery we are waiting for
        }
        match self.discovery.phase() {
            Phase::Done => {
                // `Done` should imply a chosen broker; if the invariant
                // ever breaks, strand and retry rather than panic (D004).
                let Some(chosen) = self.discovery.outcome().and_then(|o| o.chosen) else {
                    self.internal_errors += 1;
                    self.state = EntityState::Stranded;
                    let delay = self.retry_policy.delay(self.retry_attempt, ctx.rng());
                    self.retry_attempt = self.retry_attempt.saturating_add(1);
                    ctx.set_timer(delay, TIMER_KEEPALIVE);
                    return;
                };
                self.on_attached(chosen, ctx);
            }
            Phase::Failed
                if self.state != EntityState::Stranded => {
                    self.state = EntityState::Stranded;
                    // Retry after a backoff (the environment is fluid;
                    // brokers may return). Each consecutive failure
                    // lengthens the wait up to the cap.
                    let delay = self.retry_policy.delay(self.retry_attempt, ctx.rng());
                    self.retry_attempt = self.retry_attempt.saturating_add(1);
                    ctx.set_timer(delay, TIMER_KEEPALIVE);
                }
            _ => {}
        }
    }
}

impl Actor for Entity {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        if let Some(delay) = self.start_delay {
            ctx.set_timer(delay, TIMER_START_DELAY);
            return;
        }
        self.discovery.on_start(ctx);
        self.check_discovery_progress(ctx);
    }

    fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
        match &event {
            Incoming::Timer { token: TIMER_KEEPALIVE } => {
                match self.state {
                    EntityState::Attached(_) => self.keepalive_tick(ctx),
                    EntityState::Stranded => {
                        self.state = EntityState::Discovering;
                        self.discovery.begin(ctx);
                        self.check_discovery_progress(ctx);
                    }
                    EntityState::Discovering => {}
                }
                return;
            }
            Incoming::Timer { token: TIMER_FLUSH } => {
                if matches!(self.state, EntityState::Attached(_)) {
                    self.flush(ctx);
                    ctx.set_timer(self.flush_interval, TIMER_FLUSH);
                }
                return;
            }
            Incoming::Timer { token: TIMER_START_DELAY } => {
                self.discovery.begin(ctx);
                self.check_discovery_progress(ctx);
                return;
            }
            Incoming::Timer { token } if *token & 0xFFFF_0000_0000_0000 == DISCOVERY_TIMER_PREFIX => {
                self.discovery.on_incoming(event, ctx);
                self.check_discovery_progress(ctx);
                return;
            }
            Incoming::Stream { msg, .. } => {
                if let Message::Publish(ev) = msg.message() {
                    if self.dedup.check_and_insert(ev.id) {
                        self.received.push(ev.clone());
                    } else {
                        self.duplicates_dropped += 1;
                    }
                    self.last_heard = ctx.now();
                    self.missed = 0;
                    return;
                }
            }
            Incoming::Datagram { msg, .. } => {
                if let Message::Pong { nonce, .. } = msg.message() {
                    if self.ping_nonces.remove(nonce).is_some() {
                        self.last_heard = ctx.now();
                        self.missed = 0;
                        return;
                    }
                }
            }
            _ => {}
        }
        // Everything else (discovery acks, responses, discovery pongs,
        // connect acks, clock sync) belongs to the discovery machinery.
        self.discovery.on_incoming(event, ctx);
        self.check_discovery_progress(ctx);
    }

    impl_actor_any!();
}

//! Scenario builders: the paper's §9 testbed in the simulator.
//!
//! Five brokers on the Table-1 WAN sites, one BDN (the
//! `gridservicelocator` role, hosted at Indianapolis), and a discovery
//! client at a configurable site (usually the Bloomington lab). The
//! overlay follows one of the paper's topologies:
//!
//! * **unconnected** (Figure 1): every broker registers with and is
//!   attached to the BDN; no overlay links — the BDN distributes
//!   requests O(N),
//! * **star** (Figure 8): brokers link to a hub; the BDN injects at the
//!   hub and the network disseminates,
//! * **linear** (Figure 10): a chain; only the first broker is
//!   registered with the BDN.
//!
//! [`ScenarioBuilder::multicast`] builds the Figure-12 configuration:
//! no BDN path, multicast-only discovery, with only some brokers inside
//! the client's realm.

use std::time::Duration;

use nb_broker::{BrokerConfig, MachineProfile, Topology, TopologyKind};
use nb_wire::{NodeId, RealmId};

use nb_net::wan::{SiteIdx, WanModel, BLOOMINGTON, CARDIFF, FSU, INDIANAPOLIS, NCSA, UMN};
use nb_net::{ClockProfile, DiscoveryEngine, ShardedSim, Sim, SimTime};

use crate::bdn::{Bdn, BdnConfig};
use crate::broker_actor::DiscoveryBrokerActor;
use crate::client::{DiscoveryClient, DiscoveryOutcome, Phase, TIMER_START};
use crate::config::DiscoveryConfig;
use crate::federation::FederationConfig;
use crate::policy::ResponsePolicy;

/// Configures and builds a [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    /// Overlay shape.
    pub kind: TopologyKind,
    /// Where the discovery client sits.
    pub client_site: SiteIdx,
    /// RNG seed (reported by every harness for reproducibility).
    pub seed: u64,
    /// Sites hosting the brokers (defaults to the paper's five).
    pub broker_sites: Vec<SiteIdx>,
    /// Client discovery configuration (`bdns` filled in at build).
    pub discovery: DiscoveryConfig,
    /// BDN configuration (`attached_brokers` filled in at build).
    pub bdn: BdnConfig,
    /// Broker response policy.
    pub policy: ResponsePolicy,
    /// Virtual time to run before the first discovery (NTP settling:
    /// the paper's 3–5 s init plus slack).
    pub warmup: Duration,
    /// Build without any BDN node (multicast-only experiments).
    pub without_bdn: bool,
    /// Clock model for every node (paper: ±2 s offsets, 1–20 ms NTP
    /// residuals, 3–5 s init).
    pub clock: ClockProfile,
    /// Multiplies the loss probability of every link (1.0 = the WAN
    /// model's defaults; 0.0 = lossless).
    pub loss_factor: f64,
    /// How many BDN nodes to build (the paper's testbed ran one; the
    /// federation work replicates the registry across several).
    pub n_bdns: usize,
    /// When set, every BDN joins one federation: `peers` is filled with
    /// the built BDN ids at construction, the rest of the template is
    /// taken as-is.
    pub federation: Option<FederationConfig>,
}

impl ScenarioBuilder {
    /// The standard five-broker WAN scenario of §9.
    pub fn new(kind: TopologyKind, client_site: SiteIdx, seed: u64) -> ScenarioBuilder {
        ScenarioBuilder {
            kind,
            client_site,
            seed,
            broker_sites: vec![INDIANAPOLIS, UMN, NCSA, FSU, CARDIFF],
            discovery: DiscoveryConfig::default(),
            bdn: BdnConfig::default(),
            policy: ResponsePolicy::open(),
            warmup: Duration::from_secs(6),
            without_bdn: false,
            clock: ClockProfile::paper(),
            loss_factor: 1.0,
            n_bdns: 1,
            federation: None,
        }
    }

    /// The Figure-12 configuration: multicast-only discovery from the
    /// Bloomington lab, with `n_local` brokers inside the lab realm and
    /// the rest on remote sites (unreachable by multicast).
    pub fn multicast(seed: u64, n_local: usize) -> ScenarioBuilder {
        let mut b = ScenarioBuilder::new(TopologyKind::Unconnected, BLOOMINGTON, seed);
        let remote = [UMN, FSU, CARDIFF, NCSA, INDIANAPOLIS];
        let mut sites = vec![BLOOMINGTON; n_local.min(5)];
        sites.extend(remote.iter().copied().take(5 - sites.len()));
        b.broker_sites = sites;
        b.discovery.multicast_only = true;
        // Multicast cannot reach beyond the realm, so the client caps the
        // responses it waits for at the local broker count (the paper's
        // "only the first N responses must be considered" knob); the
        // window timeout still bounds the wait if some are lost.
        b.discovery.max_responses = n_local.clamp(1, 5);
        b.without_bdn = true;
        b
    }

    /// Builds the simulator, nodes and links (reference serial engine).
    pub fn build(self) -> Scenario {
        let wan = WanModel::paper();
        let mut sim = Sim::with_clock_profile(self.seed, self.clock);
        let (bdns, brokers, client, topology) = self.build_into(&mut sim, &wan);
        let warmup = self.warmup;
        let mut scenario = Scenario {
            sim,
            wan,
            topology,
            kind: self.kind,
            bdn: bdns.first().copied(),
            bdns,
            brokers,
            client,
            broker_sites: self.broker_sites,
            client_site: self.client_site,
        };
        scenario.sim.run_for(warmup);
        scenario
    }

    /// Builds the same testbed on the conservative-lookahead sharded
    /// engine. Results are byte-identical for every `workers`/`shards`
    /// combination (pass `0` for `shards` to default to one group per
    /// worker); only wall time changes.
    pub fn build_sharded(self, workers: usize, shards: usize) -> ShardedScenario {
        let wan = WanModel::paper();
        let mut sim = ShardedSim::with_clock_profile(self.seed, self.clock);
        sim.set_workers(workers.max(1));
        if shards > 0 {
            sim.set_shards(shards);
        }
        let (bdns, brokers, client, topology) = self.build_into(&mut sim, &wan);
        let warmup = self.warmup;
        let mut scenario = ShardedScenario {
            sim,
            wan,
            topology,
            kind: self.kind,
            bdn: bdns.first().copied(),
            bdns,
            brokers,
            client,
            broker_sites: self.broker_sites,
            client_site: self.client_site,
        };
        scenario.sim.run_for(warmup);
        scenario
    }

    /// Engine-agnostic node/link construction, shared between
    /// [`ScenarioBuilder::build`] and [`ScenarioBuilder::build_sharded`].
    fn build_into<E: DiscoveryEngine>(
        &self,
        sim: &mut E,
        wan: &WanModel,
    ) -> (Vec<NodeId>, Vec<NodeId>, NodeId, Topology) {
        let n = self.broker_sites.len();
        let topology = Topology::build(self.kind, n);
        let dial_lists = topology.dial_lists();

        // Which brokers attach to / register with the BDN.
        let attached_idx: Vec<usize> = match self.kind {
            TopologyKind::Unconnected => (0..n).collect(),
            _ => vec![0],
        };
        let registers_with_bdn: Vec<bool> = match self.kind {
            // Figure 10: "only one broker is registered with the BDN".
            TopologyKind::Linear => (0..n).map(|i| i == 0).collect(),
            _ => vec![true; n],
        };

        // Create brokers in index order so dial lists reference existing
        // nodes. BDN node id is known only afterwards, so advertisement
        // targets are patched via the Advertiser config at creation time:
        // we create the BDN *first*.
        let bdn_site = INDIANAPOLIS;
        let bdn_ids: Vec<NodeId> = if self.without_bdn {
            Vec::new()
        } else {
            (0..self.n_bdns.max(1))
                .map(|i| {
                    let mut bdn_cfg = self.bdn.clone();
                    bdn_cfg.attached_brokers = Vec::new(); // patched below
                    bdn_cfg.auto_attach = false;
                    // BDN 0 keeps the paper's hostname so single-BDN
                    // builds are unchanged.
                    let name = if i == 0 {
                        "bdn.gridservicelocator.org".to_string()
                    } else {
                        format!("bdn{i}.gridservicelocator.org")
                    };
                    sim.add_node(&name, wan.site(bdn_site).realm, Box::new(Bdn::new(bdn_cfg)))
                })
                .collect()
        };

        let mut brokers = Vec::with_capacity(n);
        for (i, &site_idx) in self.broker_sites.iter().enumerate() {
            let site = wan.site(site_idx);
            let neighbors: Vec<NodeId> = dial_lists[i].iter().map(|&j| brokers[j]).collect();
            let cfg = BrokerConfig {
                hostname: site.host.to_string(),
                logical_address: format!("nb://paper/broker-{i}"),
                machine: MachineProfile::with_memory(site.total_memory),
                neighbors,
                ..BrokerConfig::default()
            };
            // Registering brokers advertise to the whole federation so
            // every registry holds the same origin-stamped lease.
            let bdns = if registers_with_bdn[i] { bdn_ids.clone() } else { Vec::new() };
            let actor = DiscoveryBrokerActor::new(cfg, bdns, self.policy.clone());
            let name = format!("broker-{i}@{}", site.name);
            brokers.push(sim.add_node(&name, site.realm, Box::new(actor)));
        }

        // Patch each BDN's attachment list (and federation peer set) now
        // that broker ids exist.
        for &bdn_id in &bdn_ids {
            let attached: Vec<NodeId> = attached_idx.iter().map(|&i| brokers[i]).collect();
            let federation = self
                .federation
                .clone()
                .map(|f| FederationConfig { peers: bdn_ids.clone(), ..f });
            let bdn_cfg = BdnConfig {
                attached_brokers: attached,
                auto_attach: false,
                federation,
                ..self.bdn.clone()
            };
            let actor = sim
                .actor_dyn_mut(bdn_id)
                .and_then(|a| a.as_any_mut().downcast_mut::<Bdn>())
                .expect("bdn actor");
            *actor = Bdn::new(bdn_cfg);
        }

        // Discovery client: every federation member is in the rotation.
        let mut discovery = self.discovery.clone();
        discovery.bdns = bdn_ids.clone();
        let client_site = wan.site(self.client_site);
        let client = sim.add_node(
            &format!("client@{}", client_site.name),
            client_site.realm,
            Box::new(DiscoveryClient::with_auto_start(discovery, false)),
        );

        // WAN links between every pair of placed nodes.
        let mut placement: Vec<(NodeId, SiteIdx)> = Vec::new();
        for &b in &bdn_ids {
            placement.push((b, bdn_site));
        }
        for (i, &site) in self.broker_sites.iter().enumerate() {
            placement.push((brokers[i], site));
        }
        placement.push((client, self.client_site));
        wan.install(sim.network_mut(), &placement);
        if (self.loss_factor - 1.0).abs() > f64::EPSILON {
            sim.network_mut().scale_loss(self.loss_factor);
        }

        (bdn_ids, brokers, client, topology)
    }
}

/// A built testbed: simulator plus the node ids of every role.
pub struct Scenario {
    /// The simulator.
    pub sim: Sim,
    /// The WAN model used.
    pub wan: WanModel,
    /// The overlay topology.
    pub topology: Topology,
    /// The topology kind.
    pub kind: TopologyKind,
    /// The first BDN node (absent in multicast-only scenarios) — the
    /// paper's single-BDN role, kept for all the §9 reproductions.
    pub bdn: Option<NodeId>,
    /// Every BDN node, in build order ([`ScenarioBuilder::n_bdns`]).
    pub bdns: Vec<NodeId>,
    /// Broker nodes, index-aligned with `broker_sites`.
    pub brokers: Vec<NodeId>,
    /// The discovery client node.
    pub client: NodeId,
    /// Site of each broker.
    pub broker_sites: Vec<SiteIdx>,
    /// Site of the client.
    pub client_site: SiteIdx,
}

impl Scenario {
    /// Runs one discovery and returns its outcome.
    pub fn run_discovery_once(&mut self) -> DiscoveryOutcome {
        self.run_discovery(1).pop().expect("one outcome")
    }

    /// Runs `count` back-to-back discoveries (the paper ran 120),
    /// returning the outcomes in order.
    pub fn run_discovery(&mut self, count: usize) -> Vec<DiscoveryOutcome> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let before = self
                .sim
                .actor::<DiscoveryClient>(self.client)
                .expect("client actor")
                .completed
                .len();
            self.sim.inject(
                self.client,
                Duration::from_millis(1),
                nb_net::Incoming::Timer { token: TIMER_START },
            );
            // Run until the outcome lands, bounded by a generous cap.
            let cap = self.sim.now() + Duration::from_secs(60);
            loop {
                self.sim.run_for(Duration::from_millis(100));
                let client = self.sim.actor::<DiscoveryClient>(self.client).expect("client");
                if client.completed.len() > before {
                    break;
                }
                if self.sim.now() > cap {
                    panic!(
                        "discovery run did not complete within 60s of virtual time (phase {:?})",
                        client.phase()
                    );
                }
            }
            // Small gap between runs.
            self.sim.run_for(Duration::from_millis(200));
            let client = self.sim.actor::<DiscoveryClient>(self.client).expect("client");
            out.push(client.completed.last().expect("outcome").clone());
        }
        out
    }

    /// The client's discovery state (for assertions).
    pub fn client_phase(&self) -> Phase {
        self.sim.actor::<DiscoveryClient>(self.client).expect("client").phase()
    }

    /// Maps a broker node id back to its site index.
    pub fn site_of_broker(&self, broker: NodeId) -> Option<SiteIdx> {
        self.brokers.iter().position(|&b| b == broker).map(|i| self.broker_sites[i])
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The realm of the client's site.
    pub fn client_realm(&self) -> RealmId {
        self.wan.site(self.client_site).realm
    }
}

/// A built testbed on the sharded engine: same roles as [`Scenario`],
/// plus the run digest and worker/shard knobs the determinism gates
/// compare across configurations.
pub struct ShardedScenario {
    /// The sharded simulator.
    pub sim: ShardedSim,
    /// The WAN model used.
    pub wan: WanModel,
    /// The overlay topology.
    pub topology: Topology,
    /// The topology kind.
    pub kind: TopologyKind,
    /// The first BDN node (absent in multicast-only scenarios).
    pub bdn: Option<NodeId>,
    /// Every BDN node, in build order ([`ScenarioBuilder::n_bdns`]).
    pub bdns: Vec<NodeId>,
    /// Broker nodes, index-aligned with `broker_sites`.
    pub brokers: Vec<NodeId>,
    /// The discovery client node.
    pub client: NodeId,
    /// Site of each broker.
    pub broker_sites: Vec<SiteIdx>,
    /// Site of the client.
    pub client_site: SiteIdx,
}

impl ShardedScenario {
    /// Runs one discovery and returns its outcome.
    pub fn run_discovery_once(&mut self) -> DiscoveryOutcome {
        self.run_discovery(1).pop().expect("one outcome")
    }

    /// Runs `count` back-to-back discoveries, mirroring
    /// [`Scenario::run_discovery`].
    pub fn run_discovery(&mut self, count: usize) -> Vec<DiscoveryOutcome> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let before = self.client_actor().completed.len();
            self.sim.inject(
                self.client,
                Duration::from_millis(1),
                nb_net::Incoming::Timer { token: TIMER_START },
            );
            let cap = self.sim.now() + Duration::from_secs(60);
            loop {
                self.sim.run_for(Duration::from_millis(100));
                if self.client_actor().completed.len() > before {
                    break;
                }
                if self.sim.now() > cap {
                    panic!(
                        "discovery run did not complete within 60s of virtual time (phase {:?})",
                        self.client_actor().phase()
                    );
                }
            }
            self.sim.run_for(Duration::from_millis(200));
            out.push(self.client_actor().completed.last().expect("outcome").clone());
        }
        out
    }

    fn client_actor(&self) -> &DiscoveryClient {
        self.sim.actor::<DiscoveryClient>(self.client).expect("client actor")
    }

    /// The client's discovery state (for assertions).
    pub fn client_phase(&self) -> Phase {
        self.client_actor().phase()
    }

    /// Maps a broker node id back to its site index.
    pub fn site_of_broker(&self, broker: NodeId) -> Option<SiteIdx> {
        self.brokers.iter().position(|&b| b == broker).map(|i| self.broker_sites[i])
    }

    /// The run digest (see [`ShardedSim::digest`]): byte-identical
    /// across worker and shard counts for a fixed builder + seed.
    pub fn digest(&self) -> u64 {
        self.sim.digest()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconnected_scenario_discovers_nearest_broker() {
        let mut s = ScenarioBuilder::new(TopologyKind::Unconnected, BLOOMINGTON, 42).build();
        let outcome = s.run_discovery_once();
        let chosen = outcome.chosen.expect("discovery must succeed");
        // From Bloomington the Indianapolis broker is by far the nearest;
        // with default weights it should win (it also has the most RAM).
        assert_eq!(s.site_of_broker(chosen), Some(INDIANAPOLIS));
        assert!(outcome.responses_received >= 4, "most brokers respond");
        assert!(!outcome.used_multicast);
        assert_eq!(outcome.bdn_used, s.bdn);
        let t = outcome.phases.total();
        assert!(t > Duration::from_millis(10), "total {t:?}");
        assert!(t < Duration::from_secs(10), "total {t:?}");
    }

    #[test]
    fn star_scenario_disseminates_through_hub() {
        let mut s = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 43).build();
        let outcome = s.run_discovery_once();
        assert!(outcome.chosen.is_some());
        assert!(outcome.responses_received >= 4, "flooding reaches the spokes");
    }

    #[test]
    fn linear_scenario_traverses_the_chain() {
        let mut s = ScenarioBuilder::new(TopologyKind::Linear, BLOOMINGTON, 44).build();
        let outcome = s.run_discovery_once();
        assert!(outcome.chosen.is_some());
        assert!(
            outcome.responses_received >= 4,
            "requests reach the end of the chain (got {})",
            outcome.responses_received
        );
    }

    #[test]
    fn multicast_scenario_reaches_lab_brokers_only() {
        let mut s = ScenarioBuilder::multicast(45, 2).build();
        let outcome = s.run_discovery_once();
        assert!(outcome.used_multicast);
        let chosen = outcome.chosen.expect("a lab broker answers");
        assert_eq!(s.site_of_broker(chosen), Some(BLOOMINGTON));
        // Remote brokers are unreachable by multicast and unconnected.
        assert!(outcome.responses_received <= 2, "got {}", outcome.responses_received);
    }

    #[test]
    fn sharded_build_discovers_and_is_worker_invariant() {
        let run = |workers, shards| {
            let mut s = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 47)
                .build_sharded(workers, shards);
            let o = s.run_discovery_once();
            (o.chosen.is_some(), s.digest(), s.sim.events_processed())
        };
        let reference = run(1, 1);
        assert!(reference.0, "sharded discovery completes");
        assert_eq!(reference, run(2, 2));
        assert_eq!(reference, run(4, 0));
    }

    #[test]
    fn federated_bdns_converge_and_stay_worker_invariant() {
        let run = |workers, shards| {
            let mut b = ScenarioBuilder::new(TopologyKind::Unconnected, BLOOMINGTON, 48);
            b.n_bdns = 3;
            b.federation = Some(FederationConfig::default());
            let mut s = b.build_sharded(workers, shards);
            let o = s.run_discovery_once();
            // Quiesce a few anti-entropy rounds past the discovery.
            s.sim.run_for(Duration::from_secs(10));
            let now = s.now();
            let digests: Vec<u64> = s
                .bdns
                .iter()
                .map(|&b| s.sim.actor::<Bdn>(b).expect("bdn actor").registry_digest(now))
                .collect();
            (o.chosen.is_some(), digests, s.digest(), s.sim.events_processed())
        };
        let reference = run(1, 1);
        assert!(reference.0, "federated discovery completes");
        assert!(
            reference.1.windows(2).all(|w| w[0] == w[1]),
            "quiescent federated BDNs agree: {:x?}",
            reference.1
        );
        assert_eq!(reference, run(2, 2), "sync traffic is worker-invariant");
        assert_eq!(reference, run(4, 0));
    }

    #[test]
    fn federated_client_survives_primary_bdn_loss() {
        let mut b = ScenarioBuilder::new(TopologyKind::Unconnected, BLOOMINGTON, 49);
        b.n_bdns = 2;
        b.federation = Some(FederationConfig::default());
        let mut s = b.build();
        // Let a couple of anti-entropy rounds replicate the registry,
        // then kill the client's first-choice BDN outright.
        s.sim.run_for(Duration::from_secs(6));
        s.sim.crash(s.bdns[0]);
        let outcome = s.run_discovery_once();
        assert!(outcome.chosen.is_some(), "rotation reaches the surviving BDN");
        assert_eq!(outcome.bdn_used, Some(s.bdns[1]));
    }

    #[test]
    fn repeated_runs_accumulate_outcomes() {
        let mut s = ScenarioBuilder::new(TopologyKind::Star, FSU, 46).build();
        let outcomes = s.run_discovery(3);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.chosen.is_some()));
    }
}

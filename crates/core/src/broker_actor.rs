//! The combined discovery-enabled broker actor.
//!
//! One node = one actor: the pub/sub [`Broker`] plus the discovery
//! [`Responder`] and [`Advertiser`] services, wired so that flood-topic
//! events surfaced by the broker reach the right service.

use std::time::Duration;

use nb_broker::{Broker, BrokerConfig};
use nb_wire::topic::{BDN_ADVERTISEMENT_TOPIC, DISCOVERY_REQUEST_TOPIC};
use nb_wire::{Event, Message, NodeId, Topic, TopicFilter, Wire};

use nb_net::{impl_actor_any, Actor, Context, Incoming};

use crate::advertiser::Advertiser;
use crate::policy::ResponsePolicy;
use crate::responder::Responder;

/// A broker that participates in discovery.
pub struct DiscoveryBrokerActor {
    /// The pub/sub broker.
    pub broker: Broker,
    /// The discovery responder.
    pub responder: Responder,
    /// The advertisement service.
    pub advertiser: Advertiser,
}

impl DiscoveryBrokerActor {
    /// Builds the combined actor. `bdns` is the broker configuration
    /// file's BDN list (may be empty: registration is optional, §2.1).
    pub fn new(mut cfg: BrokerConfig, bdns: Vec<NodeId>, policy: ResponsePolicy) -> Self {
        // The broker floods the discovery-plane topics.
        for topic in [DISCOVERY_REQUEST_TOPIC, BDN_ADVERTISEMENT_TOPIC] {
            let filter = TopicFilter::parse(topic).expect("well-known topic");
            if !cfg.flood_topics.contains(&filter) {
                cfg.flood_topics.push(filter);
            }
        }
        let dedup = cfg.dedup_capacity;
        DiscoveryBrokerActor {
            broker: Broker::new(cfg),
            responder: Responder::new(policy, dedup, true),
            advertiser: Advertiser::new(bdns, true, Duration::from_secs(120)),
        }
    }

    fn process_surfaced(&mut self, events: Vec<Event>, ctx: &mut dyn Context) {
        for ev in events {
            if ev.topic.as_str() == DISCOVERY_REQUEST_TOPIC {
                // Peek gate: an already-handled request is dropped on its
                // header UUID, skipping the full payload decode.
                if self.responder.suppress_flooded(&ev.payload) {
                    continue;
                }
                if let Some(req) = Responder::decode_flooded_request(&ev.payload) {
                    self.responder.on_request(req, &mut self.broker, ctx);
                }
            } else if ev.topic.as_str() == BDN_ADVERTISEMENT_TOPIC {
                if let Ok(Message::BdnAdvertisement { bdn, .. }) =
                    Message::from_shared(&ev.payload)
                {
                    self.advertiser.on_bdn_advertisement(bdn, &mut self.broker, ctx);
                }
            }
        }
    }

    /// Publishes a discovery request into the overlay from this broker
    /// (used by BDNs co-located with a broker, and in tests).
    pub fn inject_request(&mut self, req: nb_wire::DiscoveryRequest, ctx: &mut dyn Context) {
        let topic = Topic::parse(DISCOVERY_REQUEST_TOPIC).expect("well-known topic");
        let payload = Message::Discovery(req).to_bytes();
        let surfaced = self.broker.publish_local(topic, payload, ctx);
        self.process_surfaced(surfaced, ctx);
    }
}

impl Actor for DiscoveryBrokerActor {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        self.broker.on_start(ctx);
        self.responder.on_start(ctx);
        self.advertiser.on_start(&mut self.broker, ctx);
    }

    fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
        if self.responder.handle(&event, &mut self.broker, ctx) {
            return;
        }
        if self.advertiser.handle(&event, &mut self.broker, ctx) {
            return;
        }
        let surfaced = self.broker.handle(event, ctx);
        self.process_surfaced(surfaced, ctx);
    }

    impl_actor_any!();
}

//! BDN federation: gossip-replicated advertisement leases.
//!
//! The paper keeps each BDN an isolated registry — BDNs "need not agree"
//! — so a client whose configured BDNs all die simply cannot discover
//! anyone. This module goes past the paper (ROADMAP item 2): BDNs form a
//! seeded peer set and run periodic **anti-entropy** rounds. Each round a
//! BDN picks a deterministic partner, sends an FNV-1a digest of its
//! registry, and on mismatch the pair exchanges full lease/tombstone
//! snapshots ([`nb_wire::FederationSync`], three legs: Digest → Push →
//! PushReply).
//!
//! ## The merge algebra
//!
//! Replication only converges if merge is a **join-semilattice**:
//! commutative, associative, idempotent, so every BDN reaches the same
//! fixed point regardless of gossip order or repetition. Per broker, the
//! candidate states are totally ordered:
//!
//! * a lease sorts by `(ad.issued_at_utc, 0, encoded-ad-bytes,
//!   expires_at_us)`,
//! * a tombstone retiring leases issued at or before `t` sorts by
//!   `(t, 1)` — it beats any lease it retires (ties included) and loses
//!   to any strictly newer lease.
//!
//! Merge is the pointwise maximum under this order. The LWW key is the
//! **origin-stamped** `issued_at_utc` — every BDN that hears the same
//! heartbeat stores the same key — never the local arrival time, which
//! differs by delivery jitter and would keep digests from ever agreeing.
//!
//! ## Why tombstones
//!
//! Resurrection is the failure mode to kill: BDN *a* expires a dead
//! broker's lease, then a stale peer *b* (crashed before the expiry, or
//! partitioned) pushes the old advertisement back and the ghost returns
//! to the registry. An expired lease therefore leaves a tombstone carrying
//! the retired ad's `issued_at_utc`; merges drop any lease at or below
//! that stamp. Tombstones live in a bounded cache with their own TTL: one
//! is safe to forget once `t + ad_ttl + tombstone_ttl <= now`, because
//! every lease it could still block expired at the latest at
//! `t + delivery + ad_ttl` and expired leases never enter a registry on
//! merge.

use std::collections::BTreeMap;
use std::time::Duration;

use nb_wire::{LeaseRecord, NodeId, TombstoneRecord, Wire, WireWriter};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Federation configuration. `None` in [`crate::BdnConfig::federation`]
/// disables the subsystem entirely: no timers, no RNG draws, no wire
/// traffic — a non-federated BDN is byte-identical to the pre-federation
/// build.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Every BDN in the federation (the local node may be listed; it
    /// never picks itself as a partner).
    pub peers: Vec<NodeId>,
    /// Anti-entropy round period.
    pub round_interval: Duration,
    /// How long a tombstone outlives the last lease it could block.
    pub tombstone_ttl: Duration,
    /// Bounded tombstone cache: oldest retired stamps evicted first.
    pub max_tombstones: usize,
    /// Upper bound on lease/tombstone records accepted in one sync
    /// (peer-supplied — anything larger is counted malformed, D004).
    pub max_sync_entries: usize,
    /// Seed for the partner-selection stream. Each BDN derives a private
    /// RNG from `seed ^ node_id`, so partner choice is deterministic and
    /// never perturbs the node's main RNG stream (D003/D008).
    pub seed: u64,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            peers: Vec::new(),
            round_interval: Duration::from_secs(2),
            tombstone_ttl: Duration::from_secs(300),
            max_tombstones: 1024,
            max_sync_entries: 4096,
            seed: 0,
        }
    }
}

/// Per-fate federation counters, mirroring the `NetStats` pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederationStats {
    /// Anti-entropy rounds initiated.
    pub rounds_run: u64,
    /// Digest probes answered whose digest already matched.
    pub digests_matched: u64,
    /// Digest probes answered whose digest mismatched (snapshot pushed).
    pub digests_mismatched: u64,
    /// Lease records sent in push legs.
    pub entries_pushed: u64,
    /// Lease records accepted from a peer into the registry.
    pub entries_pulled: u64,
    /// Tombstones accepted from a peer (or minted from an expired
    /// incoming lease).
    pub tombstones_applied: u64,
    /// Tombstones dropped by TTL pruning.
    pub tombstones_expired: u64,
    /// Stale advertisements or lease records rejected by a tombstone.
    pub resurrections_blocked: u64,
}

/// FNV-1a-64 over `bytes`, continuing from `hash` (offset-basis to start).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a-64 step over a byte slice.
pub fn fnv1a64_step(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Does `incoming` supersede `existing` under the lease total order?
/// Ties (identical stamp, bytes and expiry) do **not** supersede, so
/// re-applying a record is a no-op (idempotence).
pub fn lease_supersedes(incoming: &LeaseRecord, existing: &LeaseRecord) -> bool {
    match incoming.ad.issued_at_utc.cmp(&existing.ad.issued_at_utc) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => {
            if incoming.ad == existing.ad {
                return incoming.expires_at_us > existing.expires_at_us;
            }
            let mut wi = WireWriter::new();
            incoming.ad.encode(&mut wi);
            let mut we = WireWriter::new();
            existing.ad.encode(&mut we);
            match wi.as_slice().cmp(we.as_slice()) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => incoming.expires_at_us > existing.expires_at_us,
            }
        }
    }
}

/// Does a tombstone at stamp `t` retire a lease issued at `issued_at`?
/// The tombstone wins exact ties: it was minted *from* that lease.
pub fn tombstone_blocks(t: u64, issued_at: u64) -> bool {
    issued_at <= t
}

/// What [`LeaseBook::apply_lease`] did with a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseOutcome {
    /// Stored (fresh entry or superseding refresh).
    Stored,
    /// Dropped: an equal-or-newer lease is already held.
    Superseded,
    /// Dropped: a tombstone retires it.
    Tombstoned,
}

/// The pure replicated-registry state: live leases plus tombstones, with
/// merge as the pointwise join described in the module docs. The BDN's
/// own registry routes every federated mutation through the same
/// [`lease_supersedes`]/[`tombstone_blocks`] predicates; this standalone
/// form exists so the algebraic laws are directly property-testable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeaseBook {
    /// Live leases by broker.
    pub leases: BTreeMap<NodeId, LeaseRecord>,
    /// Retired stamps by broker.
    pub tombstones: BTreeMap<NodeId, u64>,
}

impl LeaseBook {
    /// Applies one lease record (the per-broker join with a lease).
    pub fn apply_lease(&mut self, rec: LeaseRecord) -> LeaseOutcome {
        let broker = rec.ad.broker;
        if let Some(&t) = self.tombstones.get(&broker) {
            if tombstone_blocks(t, rec.ad.issued_at_utc) {
                return LeaseOutcome::Tombstoned;
            }
            // Strictly newer lease: the tombstone is fully retired.
            self.tombstones.remove(&broker);
        }
        match self.leases.get(&broker) {
            Some(existing) if !lease_supersedes(&rec, existing) => LeaseOutcome::Superseded,
            _ => {
                self.leases.insert(broker, rec);
                LeaseOutcome::Stored
            }
        }
    }

    /// Applies one tombstone (the per-broker join with a tombstone).
    /// Returns whether anything changed.
    pub fn apply_tombstone(&mut self, broker: NodeId, t: u64) -> bool {
        if let Some(existing) = self.leases.get(&broker) {
            if !tombstone_blocks(t, existing.ad.issued_at_utc) {
                return false; // a newer lease beats this tombstone
            }
            self.leases.remove(&broker);
        }
        match self.tombstones.get(&broker) {
            Some(&have) if have >= t => false,
            _ => {
                self.tombstones.insert(broker, t);
                true
            }
        }
    }

    /// Merges every record of `other` into `self` (the full join).
    pub fn merge_from(&mut self, other: &LeaseBook) {
        for rec in other.leases.values() {
            self.apply_lease(rec.clone());
        }
        for (&broker, &t) in &other.tombstones {
            self.apply_tombstone(broker, t);
        }
    }

    /// FNV-1a-64 digest over the whole book: sorted leases (broker,
    /// stamp, ad bytes — expiry and RTT deliberately excluded, they are
    /// arrival-local), then sorted tombstones. Two BDNs with equal
    /// digests hold interchangeable registries.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut w = WireWriter::new();
        for (broker, rec) in &self.leases {
            h = fnv1a64_step(h, &broker.0.to_le_bytes());
            h = fnv1a64_step(h, &rec.ad.issued_at_utc.to_le_bytes());
            w.clear();
            rec.ad.encode(&mut w);
            h = fnv1a64_step(h, w.as_slice());
        }
        h = fnv1a64_step(h, &[0xFF]);
        for (broker, t) in &self.tombstones {
            h = fnv1a64_step(h, &broker.0.to_le_bytes());
            h = fnv1a64_step(h, &t.to_le_bytes());
        }
        h
    }
}

/// Per-BDN federation runtime state: config, counters, the tombstone
/// cache and the private partner-selection RNG.
#[derive(Debug)]
pub struct Federation {
    /// Static configuration.
    pub cfg: FederationConfig,
    /// Counters surfaced in campaign reports.
    pub stats: FederationStats,
    tombstones: BTreeMap<NodeId, u64>,
    rng: Option<StdRng>,
}

impl Federation {
    /// Fresh state from `cfg`.
    pub fn new(cfg: FederationConfig) -> Federation {
        Federation { cfg, stats: FederationStats::default(), tombstones: BTreeMap::new(), rng: None }
    }

    /// The retired stamp for `broker`, if tombstoned.
    pub fn tombstone_for(&self, broker: NodeId) -> Option<u64> {
        self.tombstones.get(&broker).copied()
    }

    /// All tombstones, for snapshot assembly.
    pub fn tombstones(&self) -> &BTreeMap<NodeId, u64> {
        &self.tombstones
    }

    /// Snapshot of the tombstone cache as wire records.
    pub fn tombstone_records(&self) -> Vec<TombstoneRecord> {
        self.tombstones
            .iter()
            .map(|(&broker, &t)| TombstoneRecord { broker, lease_issued_utc: t })
            .collect()
    }

    /// Records a locally-expired lease as a tombstone (keeping the max
    /// stamp if one exists) and enforces the cache bound.
    pub fn note_expired(&mut self, broker: NodeId, issued_at: u64) {
        let entry = self.tombstones.entry(broker).or_insert(issued_at);
        if *entry < issued_at {
            *entry = issued_at;
        }
        self.enforce_bound();
    }

    /// Applies a peer-supplied tombstone against the cache only (the
    /// caller handles the registry side). Returns whether it was news.
    pub fn absorb_tombstone(&mut self, broker: NodeId, t: u64) -> bool {
        let news = match self.tombstones.get(&broker) {
            Some(&have) => have < t,
            None => true,
        };
        if news {
            self.tombstones.insert(broker, t);
            self.enforce_bound();
        }
        news
    }

    /// Drops the tombstone for `broker` (a strictly newer lease landed).
    pub fn clear_tombstone(&mut self, broker: NodeId) {
        self.tombstones.remove(&broker);
    }

    /// TTL pruning: a tombstone is safe to forget once every lease it
    /// could block has certainly expired (`t + ad_ttl`) and the grace
    /// window has passed.
    pub fn prune(&mut self, now_us: u64, ad_ttl: Duration) {
        let horizon = ad_ttl.as_micros() as u64 + self.cfg.tombstone_ttl.as_micros() as u64;
        let before = self.tombstones.len();
        self.tombstones.retain(|_, &mut t| t.saturating_add(horizon) > now_us);
        self.stats.tombstones_expired += (before - self.tombstones.len()) as u64;
    }

    fn enforce_bound(&mut self) {
        while self.tombstones.len() > self.cfg.max_tombstones {
            // Evict the oldest retired stamp (ties: lowest broker id).
            let Some((&broker, _)) =
                self.tombstones.iter().min_by_key(|&(broker, &t)| (t, broker.0))
            else {
                return;
            };
            self.tombstones.remove(&broker);
        }
    }

    /// Picks this round's partner: a uniformly-drawn peer other than
    /// `me`, from a private seeded stream keyed on the node id.
    pub fn pick_partner(&mut self, me: NodeId) -> Option<NodeId> {
        let candidates: Vec<NodeId> =
            self.cfg.peers.iter().copied().filter(|&p| p != me).collect();
        if candidates.is_empty() {
            return None;
        }
        let seed = self.cfg.seed ^ u64::from(me.0);
        let rng = self.rng.get_or_insert_with(|| StdRng::seed_from_u64(seed));
        let idx = (rng.next_u64() % candidates.len() as u64) as usize;
        candidates.get(idx).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_wire::{BrokerAdvertisement, RealmId};

    fn ad(broker: u32, issued: u64) -> BrokerAdvertisement {
        BrokerAdvertisement {
            broker: NodeId(broker),
            hostname: format!("b{broker}"),
            logical_address: format!("nb://x/{broker}"),
            realm: RealmId(1),
            transports: vec![],
            geography: None,
            institution: None,
            issued_at_utc: issued,
        }
    }

    fn lease(broker: u32, issued: u64, expires: u64) -> LeaseRecord {
        LeaseRecord { ad: ad(broker, issued), expires_at_us: expires }
    }

    #[test]
    fn newer_lease_wins_and_clears_tombstone() {
        let mut book = LeaseBook::default();
        assert!(book.apply_tombstone(NodeId(1), 100));
        assert_eq!(book.apply_lease(lease(1, 100, 500)), LeaseOutcome::Tombstoned);
        assert_eq!(book.apply_lease(lease(1, 101, 500)), LeaseOutcome::Stored);
        assert!(book.tombstones.is_empty());
        // Re-applying the tombstone now loses to the newer lease.
        assert!(!book.apply_tombstone(NodeId(1), 100));
        assert!(book.leases.contains_key(&NodeId(1)));
    }

    #[test]
    fn stale_lease_is_superseded() {
        let mut book = LeaseBook::default();
        assert_eq!(book.apply_lease(lease(1, 200, 900)), LeaseOutcome::Stored);
        assert_eq!(book.apply_lease(lease(1, 150, 900)), LeaseOutcome::Superseded);
        assert_eq!(book.apply_lease(lease(1, 200, 900)), LeaseOutcome::Superseded);
        // Same stamp, longer expiry: refresh.
        assert_eq!(book.apply_lease(lease(1, 200, 950)), LeaseOutcome::Stored);
    }

    #[test]
    fn digest_ignores_expiry_but_sees_tombstones() {
        let mut a = LeaseBook::default();
        let mut b = LeaseBook::default();
        a.apply_lease(lease(1, 200, 900));
        b.apply_lease(lease(1, 200, 905)); // arrival jitter on the expiry
        assert_eq!(a.digest(), b.digest());
        b.apply_tombstone(NodeId(2), 50);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn tombstone_cache_is_bounded_and_evicts_oldest() {
        let mut fed = Federation::new(FederationConfig {
            max_tombstones: 2,
            ..FederationConfig::default()
        });
        fed.note_expired(NodeId(1), 100);
        fed.note_expired(NodeId(2), 50);
        fed.note_expired(NodeId(3), 200);
        assert_eq!(fed.tombstones().len(), 2);
        assert_eq!(fed.tombstone_for(NodeId(2)), None, "oldest stamp evicted");
        assert_eq!(fed.tombstone_for(NodeId(1)), Some(100));
        assert_eq!(fed.tombstone_for(NodeId(3)), Some(200));
    }

    #[test]
    fn prune_respects_combined_horizon() {
        let mut fed = Federation::new(FederationConfig {
            tombstone_ttl: Duration::from_secs(10),
            ..FederationConfig::default()
        });
        let ad_ttl = Duration::from_secs(30);
        fed.note_expired(NodeId(1), 1_000_000);
        // 1s stamp + 30s ad_ttl + 10s grace = safe from 41s.
        fed.prune(40_999_999, ad_ttl);
        assert_eq!(fed.tombstone_for(NodeId(1)), Some(1_000_000));
        fed.prune(41_000_000, ad_ttl);
        assert_eq!(fed.tombstone_for(NodeId(1)), None);
        assert_eq!(fed.stats.tombstones_expired, 1);
    }

    #[test]
    fn partner_stream_is_deterministic_and_excludes_self() {
        let cfg = FederationConfig {
            peers: vec![NodeId(10), NodeId(11), NodeId(12)],
            seed: 42,
            ..FederationConfig::default()
        };
        let mut a = Federation::new(cfg.clone());
        let mut b = Federation::new(cfg);
        for _ in 0..32 {
            let pa = a.pick_partner(NodeId(11));
            assert_eq!(pa, b.pick_partner(NodeId(11)));
            assert_ne!(pa, Some(NodeId(11)));
        }
    }
}

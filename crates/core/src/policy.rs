//! Broker response policies.
//!
//! Paper §5: "A broker's response policy may predicate responses based on
//! the presentation of appropriate credentials. Furthermore the policy
//! may also dictate that responses be issued only if the request
//! originated from within a set of pre-defined network realms."

use nb_wire::{DiscoveryRequest, RealmId};

/// Who a broker (or private BDN) answers.
#[derive(Debug, Clone, Default)]
pub struct ResponsePolicy {
    /// If set, requests must carry a credential whose principal appears
    /// in this list.
    pub allowed_principals: Option<Vec<String>>,
    /// If set, requests must carry a credential token equal to this
    /// value (shared-secret style check; the secured configuration uses
    /// `nb-security` envelopes instead).
    pub required_token: Option<Vec<u8>>,
    /// If set, requests must originate within one of these realms.
    pub allowed_realms: Option<Vec<RealmId>>,
}

impl ResponsePolicy {
    /// The open policy: answer everyone.
    pub fn open() -> ResponsePolicy {
        ResponsePolicy::default()
    }

    /// Restricts responses to the given realms.
    pub fn realms(realms: Vec<RealmId>) -> ResponsePolicy {
        ResponsePolicy { allowed_realms: Some(realms), ..ResponsePolicy::default() }
    }

    /// Requires a credential naming one of `principals`.
    pub fn principals(principals: Vec<String>) -> ResponsePolicy {
        ResponsePolicy { allowed_principals: Some(principals), ..ResponsePolicy::default() }
    }

    /// Whether this policy permits answering `request`.
    pub fn permits(&self, request: &DiscoveryRequest) -> bool {
        if let Some(realms) = &self.allowed_realms {
            if !realms.contains(&request.realm) {
                return false;
            }
        }
        if let Some(principals) = &self.allowed_principals {
            match &request.credentials {
                None => return false,
                Some(c) => {
                    if !principals.contains(&c.principal) {
                        return false;
                    }
                }
            }
        }
        if let Some(token) = &self.required_token {
            match &request.credentials {
                None => return false,
                Some(c) => {
                    if &c.token != token {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_util::Uuid;
    use nb_wire::{Credential, Endpoint, NodeId, Port};

    fn request(realm: u16, cred: Option<Credential>) -> DiscoveryRequest {
        DiscoveryRequest {
            request_id: Uuid::from_u128(1),
            requester: NodeId(1),
            hostname: "h".into(),
            realm: RealmId(realm),
            reply_to: Endpoint::new(NodeId(1), Port(5060)),
            transports: vec![],
            credentials: cred,
            issued_at_utc: 0,
        }
    }

    fn cred(p: &str, token: &[u8]) -> Credential {
        Credential { principal: p.into(), token: token.to_vec() }
    }

    #[test]
    fn open_policy_permits_everything() {
        let p = ResponsePolicy::open();
        assert!(p.permits(&request(0, None)));
        assert!(p.permits(&request(9, Some(cred("x", b"t")))));
    }

    #[test]
    fn realm_restriction() {
        let p = ResponsePolicy::realms(vec![RealmId(1), RealmId(2)]);
        assert!(p.permits(&request(1, None)));
        assert!(p.permits(&request(2, None)));
        assert!(!p.permits(&request(3, None)));
    }

    #[test]
    fn principal_restriction() {
        let p = ResponsePolicy::principals(vec!["alice".into()]);
        assert!(p.permits(&request(0, Some(cred("alice", b"")))));
        assert!(!p.permits(&request(0, Some(cred("bob", b"")))));
        assert!(!p.permits(&request(0, None)), "missing credentials rejected");
    }

    #[test]
    fn token_restriction() {
        let p = ResponsePolicy {
            required_token: Some(b"secret".to_vec()),
            ..ResponsePolicy::default()
        };
        assert!(p.permits(&request(0, Some(cred("any", b"secret")))));
        assert!(!p.permits(&request(0, Some(cred("any", b"wrong")))));
        assert!(!p.permits(&request(0, None)));
    }

    #[test]
    fn combined_restrictions_all_apply() {
        let p = ResponsePolicy {
            allowed_principals: Some(vec!["alice".into()]),
            required_token: Some(b"s".to_vec()),
            allowed_realms: Some(vec![RealmId(1)]),
        };
        assert!(p.permits(&request(1, Some(cred("alice", b"s")))));
        assert!(!p.permits(&request(2, Some(cred("alice", b"s")))));
        assert!(!p.permits(&request(1, Some(cred("alice", b"x")))));
        assert!(!p.permits(&request(1, Some(cred("eve", b"s")))));
    }
}

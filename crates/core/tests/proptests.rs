//! Property-based tests for the selection algorithm, BDN injection
//! ordering, retry backoff and duplicate suppression — the paper's
//! decision logic under arbitrary inputs.

use std::time::Duration;

use proptest::prelude::*;

use nb_discovery::bdn::injection_order;
use nb_discovery::{shortlist, weigh, Candidate, RetryPolicy, SelectionWeights};
use nb_util::{BoundedDedup, Uuid};
use nb_wire::message::TransportEndpoint;
use nb_wire::{DiscoveryResponse, NodeId, Port, RealmId, TransportKind, UsageMetrics};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_metrics() -> impl Strategy<Value = UsageMetrics> {
    (any::<u16>(), 0u32..64, 0u16..=1000, 1u64..=(64 << 30), any::<u64>()).prop_map(
        |(conns, links, cpu, total, used)| UsageMetrics {
            active_connections: u32::from(conns),
            num_links: links,
            cpu_load_permille: cpu,
            total_memory: total,
            used_memory: used % (total + 1),
        },
    )
}

fn arb_candidate() -> impl Strategy<Value = Candidate> {
    (0u32..40, -30_000i64..500_000, arb_metrics()).prop_map(|(broker, delay, metrics)| Candidate {
        response: DiscoveryResponse {
            request_id: Uuid::from_u128(1),
            broker: NodeId(broker),
            hostname: format!("b{broker}"),
            realm: RealmId(0),
            transports: vec![TransportEndpoint { kind: TransportKind::Tcp, port: Port(5045) }],
            issued_at_utc: 0,
            metrics,
        },
        est_delay_us: delay,
        weight: 0.0,
    })
}

fn arb_weights() -> impl Strategy<Value = SelectionWeights> {
    (0.0f64..200.0, 0.0f64..0.1, 0.0f64..5.0, 0.0f64..1.0, 0.0f64..100.0, 0.0f64..2.0).prop_map(
        |(free, total, links, conns, cpu, delay)| SelectionWeights {
            free_to_total_memory: free,
            total_memory_mb: total,
            num_links: links,
            connections: conns,
            cpu_load: cpu,
            delay_ms: delay,
        },
    )
}

proptest! {
    #[test]
    fn shortlist_output_is_bounded_and_from_input(
        cands in prop::collection::vec(arb_candidate(), 0..60),
        weights in arb_weights(),
        max_resp in 1usize..20,
        target in 1usize..20,
    ) {
        let input_brokers: Vec<NodeId> =
            cands.iter().map(|c| c.response.broker).collect();
        let out = shortlist(cands, &weights, max_resp, target);
        prop_assert!(out.len() <= target.min(max_resp).max(1));
        for c in &out {
            prop_assert!(input_brokers.contains(&c.response.broker));
        }
    }

    #[test]
    fn shortlist_never_repeats_a_broker(
        cands in prop::collection::vec(arb_candidate(), 0..60),
        weights in arb_weights(),
    ) {
        let out = shortlist(cands, &weights, 32, 32);
        let mut brokers: Vec<NodeId> = out.iter().map(|c| c.response.broker).collect();
        let before = brokers.len();
        brokers.sort_unstable();
        brokers.dedup();
        prop_assert_eq!(brokers.len(), before, "duplicate broker in target set");
    }

    #[test]
    fn shortlist_orders_by_descending_weight(
        cands in prop::collection::vec(arb_candidate(), 2..60),
        weights in arb_weights(),
    ) {
        let out = shortlist(cands, &weights, 64, 64);
        for pair in out.windows(2) {
            prop_assert!(
                pair[0].weight >= pair[1].weight,
                "{} before {}", pair[0].weight, pair[1].weight
            );
        }
        // Reported weights match the formula.
        for c in &out {
            let w = weigh(&c.response.metrics, c.est_delay_us, &weights);
            prop_assert!((c.weight - w).abs() < 1e-9);
        }
    }

    #[test]
    fn shortlist_respects_the_delay_gate(
        cands in prop::collection::vec(arb_candidate(), 1..60),
        weights in arb_weights(),
        max_resp in 1usize..10,
    ) {
        // Every selected candidate must be within the first `max_resp`
        // distinct brokers by estimated delay.
        let mut per_broker_best: std::collections::BTreeMap<NodeId, i64> = Default::default();
        for c in &cands {
            let e = per_broker_best.entry(c.response.broker).or_insert(c.est_delay_us);
            *e = (*e).min(c.est_delay_us);
        }
        let mut by_delay: Vec<(i64, NodeId)> =
            per_broker_best.iter().map(|(&b, &d)| (d, b)).collect();
        by_delay.sort();
        let gate: Vec<NodeId> =
            by_delay.iter().take(max_resp).map(|&(_, b)| b).collect();
        let out = shortlist(cands, &weights, max_resp, 64);
        for c in &out {
            prop_assert!(gate.contains(&c.response.broker));
        }
    }

    #[test]
    fn weigh_is_monotone_in_each_penalty(
        m in arb_metrics(),
        weights in arb_weights(),
        delay in 0i64..1_000_000,
    ) {
        let base = weigh(&m, delay, &weights);
        let mut more_links = m;
        more_links.num_links += 1;
        prop_assert!(weigh(&more_links, delay, &weights) <= base);
        let mut more_conns = m;
        more_conns.active_connections += 1;
        prop_assert!(weigh(&more_conns, delay, &weights) <= base);
        prop_assert!(weigh(&m, delay + 1_000, &weights) <= base);
    }

    #[test]
    fn injection_order_is_a_permutation(
        rtts in prop::collection::vec(prop::option::of(1u64..1_000_000), 0..20),
    ) {
        let targets: Vec<(NodeId, Option<u64>)> =
            rtts.iter().enumerate().map(|(i, &r)| (NodeId(i as u32), r)).collect();
        let order = injection_order(&targets);
        prop_assert_eq!(order.len(), targets.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), targets.len(), "order must not repeat targets");
    }

    #[test]
    fn injection_order_closest_and_farthest_lead(
        rtts in prop::collection::vec(1u64..1_000_000, 2..20),
    ) {
        let targets: Vec<(NodeId, Option<u64>)> =
            rtts.iter().enumerate().map(|(i, &r)| (NodeId(i as u32), Some(r))).collect();
        let order = injection_order(&targets);
        let min = targets.iter().min_by_key(|(n, r)| (r.unwrap(), *n)).unwrap().0;
        let max_rtt = targets.iter().map(|(_, r)| r.unwrap()).max().unwrap();
        prop_assert_eq!(order[0], min, "closest first");
        let second_rtt = targets.iter().find(|(n, _)| *n == order[1]).unwrap().1.unwrap();
        prop_assert_eq!(second_rtt, max_rtt, "farthest second");
    }

    #[test]
    fn backoff_nominal_schedule_is_monotone_and_capped(
        base_ms in 1u64..10_000,
        multiplier in 1.0f64..4.0,
        cap_ms in 1u64..120_000,
        attempts in 1u32..80,
    ) {
        let policy = RetryPolicy::new(
            Duration::from_millis(base_ms),
            multiplier,
            Duration::from_millis(cap_ms),
            0.0,
        );
        let mut prev = Duration::ZERO;
        for attempt in 0..attempts {
            let nominal = policy.nominal(attempt);
            prop_assert!(nominal >= prev, "schedule shrank at attempt {attempt}");
            prop_assert!(nominal <= policy.cap, "attempt {attempt} exceeded the cap");
            prop_assert!(nominal >= policy.base.min(policy.cap));
            prev = nominal;
        }
    }

    #[test]
    fn backoff_jitter_stays_within_bounds(
        base_ms in 1u64..5_000,
        multiplier in 1.0f64..3.0,
        cap_ms in 1u64..60_000,
        jitter in 0.0f64..0.9,
        attempt in 0u32..40,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy::new(
            Duration::from_millis(base_ms),
            multiplier,
            Duration::from_millis(cap_ms),
            jitter,
        );
        let nominal = policy.nominal(attempt).as_secs_f64();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let d = policy.delay(attempt, &mut rng).as_secs_f64();
            prop_assert!(d >= nominal * (1.0 - jitter) - 1e-9, "{d} under the jitter floor");
            prop_assert!(d <= nominal * (1.0 + jitter) + 1e-9, "{d} over the jitter ceiling");
        }
    }

    #[test]
    fn dedup_cache_rejects_every_duplicate_under_packet_duplication(
        keys in prop::collection::vec(0u64..500, 1..200),
        copies in prop::collection::vec(1usize..4, 1..200),
    ) {
        // Model the duplication fault: every key arrives 1..=3 times,
        // interleaved in arrival order. A cache at least as large as
        // the distinct key count must accept each key exactly once.
        let mut distinct: Vec<u64> = keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let mut cache = BoundedDedup::new(distinct.len().max(1));
        let mut accepted = 0usize;
        let mut seen: Vec<u64> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            let n = copies[i % copies.len()];
            for _ in 0..n {
                if cache.check_and_insert(k) {
                    prop_assert!(!seen.contains(&k), "key {k} accepted twice");
                    seen.push(k);
                    accepted += 1;
                }
            }
        }
        prop_assert_eq!(accepted, distinct.len(), "each distinct key accepted exactly once");
    }
}

// ---------------------------------------------------------------- federation

use nb_discovery::LeaseBook;
use nb_wire::{BrokerAdvertisement, LeaseRecord};

/// One federated registry mutation: a lease application or a tombstone.
#[derive(Debug, Clone)]
enum FedOp {
    Lease { broker: u32, issued: u64, expires: u64 },
    Tombstone { broker: u32, stamp: u64 },
}

/// Ads are content-addressed by (broker, issued): every BDN that hears
/// the same heartbeat holds byte-identical ad fields, which is exactly
/// what the real advertiser produces.
fn fed_ad(broker: u32, issued: u64) -> BrokerAdvertisement {
    BrokerAdvertisement {
        broker: NodeId(broker),
        hostname: format!("b{broker}"),
        logical_address: format!("nb://fed/{broker}-{issued}"),
        realm: RealmId(1),
        transports: vec![],
        geography: None,
        institution: None,
        issued_at_utc: issued,
    }
}

fn arb_fed_op() -> impl Strategy<Value = FedOp> {
    prop_oneof![
        (0u32..6, 0u64..200, 0u64..400).prop_map(|(broker, issued, expires)| FedOp::Lease {
            broker,
            issued,
            expires,
        }),
        (0u32..6, 0u64..200).prop_map(|(broker, stamp)| FedOp::Tombstone { broker, stamp }),
    ]
}

fn book_from(ops: &[FedOp]) -> LeaseBook {
    let mut book = LeaseBook::default();
    for op in ops {
        match *op {
            FedOp::Lease { broker, issued, expires } => {
                book.apply_lease(LeaseRecord { ad: fed_ad(broker, issued), expires_at_us: expires });
            }
            FedOp::Tombstone { broker, stamp } => {
                book.apply_tombstone(NodeId(broker), stamp);
            }
        }
    }
    book
}

fn merged(a: &LeaseBook, b: &LeaseBook) -> LeaseBook {
    let mut out = a.clone();
    out.merge_from(b);
    out
}

proptest! {
    #[test]
    fn lease_merge_is_commutative(
        ops_a in prop::collection::vec(arb_fed_op(), 0..40),
        ops_b in prop::collection::vec(arb_fed_op(), 0..40),
    ) {
        let a = book_from(&ops_a);
        let b = book_from(&ops_b);
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.digest(), ba.digest());
    }

    #[test]
    fn lease_merge_is_idempotent(
        ops in prop::collection::vec(arb_fed_op(), 0..40),
    ) {
        let a = book_from(&ops);
        let aa = merged(&a, &a);
        prop_assert_eq!(&aa, &a);
        // Re-merging a remote book twice changes nothing either.
        let twice = merged(&merged(&a, &aa), &aa);
        prop_assert_eq!(&twice, &a);
    }

    #[test]
    fn lease_merge_is_associative(
        ops_a in prop::collection::vec(arb_fed_op(), 0..30),
        ops_b in prop::collection::vec(arb_fed_op(), 0..30),
        ops_c in prop::collection::vec(arb_fed_op(), 0..30),
    ) {
        let a = book_from(&ops_a);
        let b = book_from(&ops_b);
        let c = book_from(&ops_c);
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.digest(), right.digest());
    }

    #[test]
    fn tombstone_never_coexists_with_a_retired_lease(
        ops in prop::collection::vec(arb_fed_op(), 0..60),
    ) {
        let book = book_from(&ops);
        for (broker, &t) in &book.tombstones {
            if let Some(lease) = book.leases.get(broker) {
                prop_assert!(
                    lease.ad.issued_at_utc > t,
                    "broker {broker:?}: live lease at {} under tombstone {t}",
                    lease.ad.issued_at_utc
                );
            }
        }
    }
}

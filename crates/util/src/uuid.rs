//! 128-bit universally-unique identifiers.
//!
//! The discovery protocol tags every request with a UUID so that brokers
//! can suppress duplicates and requesters can match responses to requests
//! (paper §3–§4). This is a self-contained RFC-4122-v4-shaped identifier:
//! 122 random bits plus the version/variant marker bits.

use std::fmt;
use std::str::FromStr;

use rand::Rng;

/// A 128-bit unique identifier, formatted like an RFC 4122 version-4 UUID.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uuid(u128);

impl Uuid {
    /// The all-zero UUID, used as an explicit "absent" marker on the wire.
    pub const NIL: Uuid = Uuid(0);

    /// Draws a fresh version-4 UUID from `rng`.
    ///
    /// Taking the RNG as a parameter (instead of thread-local entropy)
    /// keeps simulated runs deterministic under a fixed seed.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Uuid {
        let raw: u128 = rng.gen();
        Uuid::from_random_bits(raw)
    }

    /// Builds a v4-shaped UUID from arbitrary bits by stamping the
    /// version (4) and variant (10) fields.
    pub fn from_random_bits(raw: u128) -> Uuid {
        let mut v = raw;
        v &= !(0xF << 76); // clear version nibble
        v |= 0x4 << 76; // version 4
        v &= !(0x3 << 62); // clear variant bits
        v |= 0x2 << 62; // RFC 4122 variant
        Uuid(v)
    }

    /// Reconstructs a UUID from its raw 128-bit value (wire decoding).
    pub const fn from_u128(v: u128) -> Uuid {
        Uuid(v)
    }

    /// The raw 128-bit value (wire encoding).
    pub const fn as_u128(&self) -> u128 {
        self.0
    }

    /// Whether this is the nil (all-zero) UUID.
    pub const fn is_nil(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(
            f,
            "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11], b[12], b[13], b[14], b[15]
        )
    }
}

impl fmt::Debug for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uuid({self})")
    }
}

/// Error returned when parsing a textual UUID fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseUuidError;

impl fmt::Display for ParseUuidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid UUID syntax")
    }
}

impl std::error::Error for ParseUuidError {}

impl FromStr for Uuid {
    type Err = ParseUuidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Accept the canonical 8-4-4-4-12 form, with or without dashes.
        let mut value: u128 = 0;
        let mut nibbles = 0usize;
        for (i, c) in s.chars().enumerate() {
            if c == '-' {
                // Dashes are only legal at the canonical positions.
                if !matches!(i, 8 | 13 | 18 | 23) {
                    return Err(ParseUuidError);
                }
                continue;
            }
            let d = c.to_digit(16).ok_or(ParseUuidError)?;
            if nibbles == 32 {
                return Err(ParseUuidError);
            }
            value = (value << 4) | u128::from(d);
            nibbles += 1;
        }
        if nibbles != 32 {
            return Err(ParseUuidError);
        }
        Ok(Uuid(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_uuids_are_unique() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(Uuid::random(&mut rng)));
        }
    }

    #[test]
    fn version_and_variant_bits_are_stamped() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let u = Uuid::random(&mut rng);
            let s = u.to_string();
            let bytes: Vec<char> = s.chars().collect();
            assert_eq!(bytes[14], '4', "version nibble in {s}");
            assert!(matches!(bytes[19], '8' | '9' | 'a' | 'b'), "variant in {s}");
        }
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let u = Uuid::random(&mut rng);
            let parsed: Uuid = u.to_string().parse().unwrap();
            assert_eq!(u, parsed);
        }
    }

    #[test]
    fn parse_accepts_undashed_form() {
        let u = Uuid::from_u128(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        let undashed: String = u.to_string().chars().filter(|c| *c != '-').collect();
        assert_eq!(undashed.parse::<Uuid>().unwrap(), u);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("not-a-uuid".parse::<Uuid>().is_err());
        assert!("".parse::<Uuid>().is_err());
        assert!("0123456789abcdef0123456789abcde".parse::<Uuid>().is_err()); // 31 nibbles
        assert!("0123456789abcdef0123456789abcdef0".parse::<Uuid>().is_err()); // 33 nibbles
        // dash in a non-canonical position
        assert!("012345678-9ab-cdef-0123-456789abcdef".parse::<Uuid>().is_err());
    }

    #[test]
    fn nil_is_nil() {
        assert!(Uuid::NIL.is_nil());
        assert!(!Uuid::from_u128(1).is_nil());
        assert_eq!(Uuid::NIL.to_string(), "00000000-0000-0000-0000-000000000000");
    }

    #[test]
    fn roundtrips_raw_u128() {
        let u = Uuid::from_u128(42);
        assert_eq!(u.as_u128(), 42);
    }
}

//! Fixed-capacity ring buffer.
//!
//! Used for bounded histories: a broker's recent load samples, a client's
//! remembered target sets, recent RTT measurements at a BDN. Pushing into
//! a full buffer overwrites the oldest element.

/// A fixed-capacity FIFO that overwrites its oldest element when full.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    slots: Vec<Option<T>>,
    head: usize, // index of oldest element
    len: usize,
}

impl<T> RingBuffer<T> {
    /// Creates a buffer holding at most `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingBuffer capacity must be positive");
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        RingBuffer { slots, head: 0, len: 0 }
    }

    /// Appends `value`, evicting and returning the oldest element if full.
    pub fn push(&mut self, value: T) -> Option<T> {
        let cap = self.slots.len();
        if self.len < cap {
            let idx = (self.head + self.len) % cap;
            self.slots[idx] = Some(value);
            self.len += 1;
            None
        } else {
            let evicted = self.slots[self.head].replace(value);
            self.head = (self.head + 1) % cap;
            evicted
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The most recently pushed element.
    pub fn latest(&self) -> Option<&T> {
        if self.len == 0 {
            return None;
        }
        let idx = (self.head + self.len - 1) % self.slots.len();
        self.slots[idx].as_ref()
    }

    /// The oldest stored element.
    pub fn oldest(&self) -> Option<&T> {
        if self.len == 0 {
            return None;
        }
        self.slots[self.head].as_ref()
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let cap = self.slots.len();
        (0..self.len).map(move |i| {
            self.slots[(self.head + i) % cap]
                .as_ref()
                .expect("occupied slot within len")
        })
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.head = 0;
        self.len = 0;
    }
}

impl RingBuffer<f64> {
    /// Mean of the stored samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.iter().sum::<f64>() / self.len as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_until_full_then_evict_in_fifo_order() {
        let mut r = RingBuffer::new(3);
        assert_eq!(r.push(1), None);
        assert_eq!(r.push(2), None);
        assert_eq!(r.push(3), None);
        assert!(r.is_full());
        assert_eq!(r.push(4), Some(1));
        assert_eq!(r.push(5), Some(2));
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn latest_and_oldest_track_contents() {
        let mut r = RingBuffer::new(2);
        assert!(r.latest().is_none());
        assert!(r.oldest().is_none());
        r.push(10);
        assert_eq!(r.latest(), Some(&10));
        assert_eq!(r.oldest(), Some(&10));
        r.push(20);
        r.push(30);
        assert_eq!(r.latest(), Some(&30));
        assert_eq!(r.oldest(), Some(&20));
    }

    #[test]
    fn clear_resets() {
        let mut r = RingBuffer::new(2);
        r.push(1);
        r.push(2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.push(9), None);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn mean_over_window() {
        let mut r = RingBuffer::new(4);
        assert!(r.mean().is_none());
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            r.push(x);
        }
        // window now holds 2,3,4,5
        assert!((r.mean().unwrap() - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = RingBuffer::<u8>::new(0);
    }

    #[test]
    fn long_churn_keeps_last_capacity_elements() {
        let mut r = RingBuffer::new(7);
        for i in 0..1000u32 {
            r.push(i);
        }
        let got: Vec<u32> = r.iter().copied().collect();
        assert_eq!(got, (993..1000).collect::<Vec<_>>());
    }
}

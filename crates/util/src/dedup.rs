//! Bounded duplicate-suppression cache.
//!
//! Paper §4: *"Every broker keeps track of the last 1000 (this number can
//! be configured through the broker configuration file) broker discovery
//! requests so that additional CPU/network cycles are not expended on
//! previously processed requests."*
//!
//! [`BoundedDedup`] remembers the most recent `capacity` distinct keys in
//! insertion order; when full, the oldest key is evicted. All operations
//! are O(1) expected.

use std::collections::{HashSet, VecDeque};
use std::hash::Hash;

/// Remembers the last `capacity` distinct keys seen.
///
/// ```
/// use nb_util::BoundedDedup;
///
/// let mut seen = BoundedDedup::new(1000); // the paper's last-1000 cache
/// assert!(seen.check_and_insert("req-1"), "first sighting: process it");
/// assert!(!seen.check_and_insert("req-1"), "retransmission: suppress it");
/// ```
#[derive(Debug, Clone)]
pub struct BoundedDedup<K: Hash + Eq + Clone> {
    capacity: usize,
    seen: HashSet<K>,
    order: VecDeque<K>,
}

impl<K: Hash + Eq + Clone> BoundedDedup<K> {
    /// Creates a cache remembering at most `capacity` keys.
    ///
    /// A capacity of zero is allowed and makes every key "fresh"
    /// (no suppression), which is useful for disabling the cache.
    pub fn new(capacity: usize) -> Self {
        Self::with_expected(capacity, capacity.min(4096))
    }

    /// Creates a cache remembering at most `capacity` keys, pre-sized
    /// for an expected working set of `expected` keys. The scale-suite
    /// sizing knob: a light client (one entity among 1e5+) passes a
    /// small `expected` so it does not carry a full-capacity allocation
    /// it will never fill, while a hot broker passes `capacity` itself
    /// and never pays incremental rehash growth. Capacity semantics are
    /// unchanged — only the up-front allocation differs.
    pub fn with_expected(capacity: usize, expected: usize) -> Self {
        let pre = capacity.min(expected);
        BoundedDedup {
            capacity,
            seen: HashSet::with_capacity(pre),
            order: VecDeque::with_capacity(pre),
        }
    }

    /// Records `key`; returns `true` if it was *not* already remembered
    /// (i.e. the caller should process it), `false` for a duplicate.
    pub fn check_and_insert(&mut self, key: K) -> bool {
        if self.capacity == 0 {
            return true;
        }
        if self.seen.contains(&key) {
            return false;
        }
        if self.order.len() == self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.seen.insert(key.clone());
        self.order.push_back(key);
        true
    }

    /// Whether `key` is currently remembered (no mutation).
    pub fn contains(&self, key: &K) -> bool {
        self.seen.contains(key)
    }

    /// Number of keys currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the cache currently remembers nothing.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.seen.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sight_is_fresh_second_is_duplicate() {
        let mut d = BoundedDedup::new(10);
        assert!(d.check_and_insert("a"));
        assert!(!d.check_and_insert("a"));
        assert!(d.check_and_insert("b"));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut d = BoundedDedup::new(3);
        for k in 0..3 {
            assert!(d.check_and_insert(k));
        }
        assert!(d.check_and_insert(3)); // evicts 0
        assert!(!d.contains(&0));
        assert!(d.contains(&1));
        assert!(d.check_and_insert(0)); // 0 is fresh again
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn with_expected_keeps_capacity_semantics() {
        let mut d = BoundedDedup::with_expected(3, 1);
        assert_eq!(d.capacity(), 3);
        for k in 0..3 {
            assert!(d.check_and_insert(k));
        }
        assert!(d.check_and_insert(3)); // evicts 0, exactly like new(3)
        assert!(!d.contains(&0));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn zero_capacity_never_suppresses() {
        let mut d = BoundedDedup::new(0);
        assert!(d.check_and_insert(1));
        assert!(d.check_and_insert(1));
        assert!(d.is_empty());
    }

    #[test]
    fn clear_forgets() {
        let mut d = BoundedDedup::new(4);
        d.check_and_insert(1);
        d.clear();
        assert!(d.is_empty());
        assert!(d.check_and_insert(1));
    }

    #[test]
    fn len_never_exceeds_capacity_under_churn() {
        let mut d = BoundedDedup::new(100);
        for k in 0..10_000u32 {
            d.check_and_insert(k % 173);
            assert!(d.len() <= 100);
        }
    }

    #[test]
    fn set_and_queue_stay_consistent() {
        let mut d = BoundedDedup::new(5);
        for k in 0..50u32 {
            d.check_and_insert(k);
            assert_eq!(d.order.len(), d.seen.len());
            for key in &d.order {
                assert!(d.seen.contains(key));
            }
        }
    }
}

//! # nb-util
//!
//! Utility substrate shared by every crate in the workspace:
//!
//! * [`uuid`] — 128-bit random unique identifiers (the paper tags every
//!   discovery request with a UUID),
//! * [`dedup`] — bounded duplicate-suppression caches (every broker keeps
//!   the last *N* = 1000 discovery-request UUIDs),
//! * [`stats`] — summary statistics with the paper's outlier-trimming
//!   protocol (120 runs, outliers removed, first 100 kept),
//! * [`config`] — the `key = value` configuration-file format used by
//!   broker and client node configuration,
//! * [`ring`] — fixed-capacity ring buffers for bounded histories,
//! * [`rate`] — sliding-window rate meters (drives the simulated broker
//!   CPU-load metric).
//!
//! Everything here is deliberately dependency-light and deterministic so
//! that the discrete-event reproduction harness stays reproducible.

pub mod config;
pub mod dedup;
pub mod rate;
pub mod ring;
pub mod stats;
pub mod uuid;

pub use config::{Config, ConfigError};
pub use dedup::BoundedDedup;
pub use rate::RateMeter;
pub use ring::RingBuffer;
pub use stats::{trim_outliers, Summary};
pub use uuid::Uuid;

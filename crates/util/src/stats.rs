//! Summary statistics with the paper's sampling protocol.
//!
//! Every timing figure in the paper reports five metrics over repeated
//! discovery runs: **mean, standard deviation, maximum, minimum and
//! error** (standard error of the mean), computed after *"the discovery
//! process was carried out 120 times and the first 100 results were
//! selected after removing outliers"* (§9). [`Summary`] computes the five
//! metrics and [`trim_outliers`] + [`paper_protocol`] reproduce the
//! selection step.

use std::fmt;

/// Five-number summary matching the metric tables of Figures 3–7 and 12–14.
///
/// ```
/// use nb_util::stats::{paper_protocol, Summary};
///
/// let runs: Vec<f64> = (0..120).map(|i| 450.0 + (i % 7) as f64).collect();
/// let kept = paper_protocol(&runs, 100); // 3σ trim, first 100 kept
/// let s = Summary::of(&kept).unwrap();
/// assert_eq!(s.n, 100);
/// assert!(s.min >= 450.0 && s.max <= 457.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples summarised.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std_dev: f64,
    /// Largest sample.
    pub max: f64,
    /// Smallest sample.
    pub min: f64,
    /// Standard error of the mean (`std_dev / sqrt(n)`).
    pub error: f64,
}

impl Summary {
    /// Summarises `samples`. Returns `None` for an empty slice.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        for &x in samples {
            if x > max {
                max = x;
            }
            if x < min {
                min = x;
            }
        }
        Some(Summary {
            n,
            mean,
            std_dev,
            max,
            min,
            error: std_dev / (n as f64).sqrt(),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.3} sd={:.3} max={:.3} min={:.3} err={:.3} (n={})",
            self.mean, self.std_dev, self.max, self.min, self.error, self.n
        )
    }
}

/// Removes outliers further than `k_sigma` sample standard deviations from
/// the mean, preserving the original order of the survivors.
///
/// With fewer than 3 samples, or zero variance, the input is returned
/// unchanged (there is no meaningful notion of an outlier).
pub fn trim_outliers(samples: &[f64], k_sigma: f64) -> Vec<f64> {
    let Some(s) = Summary::of(samples) else {
        return Vec::new();
    };
    if samples.len() < 3 || s.std_dev == 0.0 {
        return samples.to_vec();
    }
    samples
        .iter()
        .copied()
        .filter(|x| (x - s.mean).abs() <= k_sigma * s.std_dev)
        .collect()
}

/// The paper's sampling protocol: run the experiment `samples.len()`
/// times (the paper used 120), remove outliers (we use 3σ), then keep the
/// first `keep` survivors (the paper kept 100).
///
/// If fewer than `keep` samples survive, all survivors are returned.
pub fn paper_protocol(samples: &[f64], keep: usize) -> Vec<f64> {
    let mut trimmed = trim_outliers(samples, 3.0);
    trimmed.truncate(keep);
    trimmed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // sample variance = 32/7
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.min, 2.0);
        assert!((s.error - s.std_dev / 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_single_sample_has_zero_spread() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.error, 0.0);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.min, 3.5);
    }

    #[test]
    fn trim_removes_far_outlier() {
        let mut xs: Vec<f64> = (0..100).map(|i| 100.0 + (i % 5) as f64).collect();
        xs.push(100_000.0);
        let trimmed = trim_outliers(&xs, 3.0);
        assert_eq!(trimmed.len(), 100);
        assert!(trimmed.iter().all(|&x| x < 1000.0));
    }

    #[test]
    fn trim_keeps_everything_when_tight() {
        let xs = [5.0, 5.1, 4.9, 5.0];
        assert_eq!(trim_outliers(&xs, 3.0), xs.to_vec());
    }

    #[test]
    fn trim_handles_zero_variance() {
        let xs = [7.0; 10];
        assert_eq!(trim_outliers(&xs, 3.0).len(), 10);
    }

    #[test]
    fn paper_protocol_keeps_first_k_in_order() {
        let xs: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let kept = paper_protocol(&xs, 100);
        assert_eq!(kept.len(), 100);
        assert_eq!(kept[0], 0.0);
        assert_eq!(kept[99], 99.0);
    }

    #[test]
    fn paper_protocol_with_too_few_survivors() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(paper_protocol(&xs, 100).len(), 3);
    }
}

//! `key = value` configuration files.
//!
//! The paper references two configuration files: the **broker
//! configuration file** (lists the BDNs a broker advertises to and the
//! dedup-cache size, §2.3/§4) and the **node configuration file** (lists
//! the BDNs that can manage a client's discovery request, §3). This module
//! implements the shared format:
//!
//! ```text
//! # comment
//! broker.dedup.capacity = 1000
//! discovery.bdns = gridservicelocator.org, gridservicelocator.com
//! discovery.timeout.ms = 4000
//! ```
//!
//! Keys are dotted lowercase identifiers; values are scalars or
//! comma-separated lists. Later assignments override earlier ones.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed configuration: an ordered map of string keys to raw values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    entries: BTreeMap<String, String>,
}

/// Errors produced while parsing or interpreting configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A line was not `key = value` or a comment/blank.
    Syntax { line: usize, text: String },
    /// A required key was absent.
    Missing(String),
    /// A value could not be interpreted at the requested type.
    BadValue { key: String, value: String, expected: &'static str },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Syntax { line, text } => {
                write!(f, "config syntax error on line {line}: {text:?}")
            }
            ConfigError::Missing(key) => write!(f, "missing config key {key:?}"),
            ConfigError::BadValue { key, value, expected } => {
                write!(f, "config key {key:?} has value {value:?}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// An empty configuration.
    pub fn new() -> Config {
        Config::default()
    }

    /// Parses the textual format described in the module docs.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError::Syntax { line: i + 1, text: raw.to_string() });
            };
            let key = key.trim();
            if key.is_empty() {
                return Err(ConfigError::Syntax { line: i + 1, text: raw.to_string() });
            }
            entries.insert(key.to_string(), value.trim().to_string());
        }
        Ok(Config { entries })
    }

    /// Sets `key` to `value`, overriding any previous assignment.
    pub fn set(&mut self, key: &str, value: impl fmt::Display) -> &mut Self {
        self.entries.insert(key.to_string(), value.to_string());
        self
    }

    /// Raw string lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Required string lookup.
    pub fn require(&self, key: &str) -> Result<&str, ConfigError> {
        self.get(key).ok_or_else(|| ConfigError::Missing(key.to_string()))
    }

    /// Integer lookup with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, ConfigError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ConfigError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
                expected: "an unsigned integer",
            }),
        }
    }

    /// Float lookup with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ConfigError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ConfigError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
                expected: "a number",
            }),
        }
    }

    /// Boolean lookup with a default; accepts `true/false/yes/no/on/off/1/0`.
    pub fn get_bool(&self, key: &str, default: bool) -> Result<bool, ConfigError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => match v.to_ascii_lowercase().as_str() {
                "true" | "yes" | "on" | "1" => Ok(true),
                "false" | "no" | "off" | "0" => Ok(false),
                _ => Err(ConfigError::BadValue {
                    key: key.to_string(),
                    value: v.to_string(),
                    expected: "a boolean",
                }),
            },
        }
    }

    /// Comma-separated list lookup; absent key yields an empty list.
    pub fn get_list(&self, key: &str) -> Vec<String> {
        match self.get(key) {
            None => Vec::new(),
            Some(v) => v
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect(),
        }
    }

    /// Number of keys set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no keys are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# broker configuration
broker.dedup.capacity = 1000
discovery.bdns = gridservicelocator.org, gridservicelocator.com,
discovery.timeout.ms = 4000
discovery.multicast = on

selection.weight.mem_ratio = 1.5
";

    #[test]
    fn parses_scalars_lists_and_comments() {
        let c = Config::parse(SAMPLE).unwrap();
        assert_eq!(c.get_u64("broker.dedup.capacity", 0).unwrap(), 1000);
        assert_eq!(c.get_u64("discovery.timeout.ms", 0).unwrap(), 4000);
        assert!((c.get_f64("selection.weight.mem_ratio", 0.0).unwrap() - 1.5).abs() < 1e-12);
        assert!(c.get_bool("discovery.multicast", false).unwrap());
        assert_eq!(
            c.get_list("discovery.bdns"),
            vec!["gridservicelocator.org", "gridservicelocator.com"]
        );
    }

    #[test]
    fn defaults_apply_for_absent_keys() {
        let c = Config::parse("").unwrap();
        assert_eq!(c.get_u64("nope", 7).unwrap(), 7);
        assert!(!c.get_bool("nope", false).unwrap());
        assert!(c.get_list("nope").is_empty());
        assert!(matches!(c.require("nope"), Err(ConfigError::Missing(_))));
    }

    #[test]
    fn later_assignment_overrides() {
        let c = Config::parse("a = 1\na = 2\n").unwrap();
        assert_eq!(c.get("a"), Some("2"));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = Config::parse("ok = 1\nbogus line\n").unwrap_err();
        assert!(matches!(err, ConfigError::Syntax { line: 2, .. }));
        let err = Config::parse("= x\n").unwrap_err();
        assert!(matches!(err, ConfigError::Syntax { line: 1, .. }));
    }

    #[test]
    fn bad_values_are_reported() {
        let c = Config::parse("n = twelve\nb = maybe\n").unwrap();
        assert!(matches!(c.get_u64("n", 0), Err(ConfigError::BadValue { .. })));
        assert!(matches!(c.get_bool("b", true), Err(ConfigError::BadValue { .. })));
    }

    #[test]
    fn set_and_display_roundtrip() {
        let mut c = Config::new();
        c.set("x.y", 5).set("z", "hello");
        let reparsed = Config::parse(&c.to_string()).unwrap();
        assert_eq!(c, reparsed);
    }

    #[test]
    fn equals_in_value_is_preserved() {
        let c = Config::parse("k = a=b\n").unwrap();
        assert_eq!(c.get("k"), Some("a=b"));
    }
}

//! Sliding-window event-rate meter.
//!
//! Backs the simulated CPU-load component of the broker **usage metric**
//! (paper §5.1: the discovery response carries "the CPU and memory
//! utilizations at the broker"). Time is an abstract `u64` of
//! caller-defined units (the simulator feeds nanoseconds), so the meter
//! works identically under virtual and wall-clock time.

use std::collections::VecDeque;

/// Counts events inside a sliding time window.
#[derive(Debug, Clone)]
pub struct RateMeter {
    window: u64,
    events: VecDeque<u64>,
    max_events: usize,
}

impl RateMeter {
    /// Creates a meter with a sliding window of `window` time units,
    /// remembering at most `max_events` timestamps (older ones collapse
    /// into eviction; 4096 is plenty for load estimation).
    pub fn new(window: u64, max_events: usize) -> Self {
        assert!(window > 0, "RateMeter window must be positive");
        assert!(max_events > 0, "RateMeter must remember at least one event");
        RateMeter { window, events: VecDeque::new(), max_events }
    }

    /// Records one event at time `now`.
    ///
    /// Timestamps must be non-decreasing; out-of-order samples are clamped
    /// to the latest time seen (simulators deliver in order anyway).
    pub fn record(&mut self, now: u64) {
        let now = self.events.back().map_or(now, |&last| now.max(last));
        if self.events.len() == self.max_events {
            self.events.pop_front();
        }
        self.events.push_back(now);
        self.expire(now);
    }

    /// Number of events within `[now - window, now]`.
    pub fn count(&mut self, now: u64) -> usize {
        self.expire(now);
        self.events.len()
    }

    /// Event rate in events per time unit over the window.
    pub fn rate(&mut self, now: u64) -> f64 {
        self.count(now) as f64 / self.window as f64
    }

    /// A load factor in `[0, 1]`: the window count relative to `full_scale`
    /// events, saturating at 1. This is how the broker converts message
    /// throughput into a CPU-utilisation figure.
    pub fn load(&mut self, now: u64, full_scale: usize) -> f64 {
        if full_scale == 0 {
            return 1.0;
        }
        (self.count(now) as f64 / full_scale as f64).min(1.0)
    }

    fn expire(&mut self, now: u64) {
        let cutoff = now.saturating_sub(self.window);
        while let Some(&front) = self.events.front() {
            if front < cutoff {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_events_in_window() {
        let mut m = RateMeter::new(100, 1000);
        for t in [0u64, 10, 20, 90] {
            m.record(t);
        }
        assert_eq!(m.count(90), 4);
        // At t=150 the cutoff is 50, so events at 0,10,20 expire.
        assert_eq!(m.count(150), 1);
        assert_eq!(m.count(500), 0);
    }

    #[test]
    fn rate_is_count_over_window() {
        let mut m = RateMeter::new(10, 100);
        for t in 0..5u64 {
            m.record(t);
        }
        assert!((m.rate(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn load_saturates_at_one() {
        let mut m = RateMeter::new(100, 1000);
        for t in 0..50u64 {
            m.record(t);
        }
        assert!((m.load(49, 100) - 0.5).abs() < 1e-12);
        assert_eq!(m.load(49, 10), 1.0);
        assert_eq!(m.load(49, 0), 1.0);
    }

    #[test]
    fn bounded_memory_under_bursts() {
        let mut m = RateMeter::new(1_000_000, 16);
        for t in 0..10_000u64 {
            m.record(t);
        }
        assert!(m.count(10_000) <= 16);
    }

    #[test]
    fn out_of_order_samples_are_clamped() {
        let mut m = RateMeter::new(100, 100);
        m.record(50);
        m.record(10); // clamped to 50
        assert_eq!(m.count(50), 2);
        assert_eq!(m.count(151), 0);
    }
}

//! Property-based tests for the utility substrate.

use proptest::prelude::*;

use nb_util::stats::{paper_protocol, trim_outliers};
use nb_util::{BoundedDedup, Config, RateMeter, RingBuffer, Summary, Uuid};

proptest! {
    #[test]
    fn dedup_never_exceeds_capacity_and_remembers_the_newest(
        keys in prop::collection::vec(0u32..200, 1..500),
        cap in 1usize..64,
    ) {
        let mut d = BoundedDedup::new(cap);
        let mut recent: Vec<u32> = Vec::new();
        for &k in &keys {
            let fresh = d.check_and_insert(k);
            prop_assert_eq!(fresh, !recent.contains(&k), "freshness for {}", k);
            if fresh {
                recent.push(k);
                if recent.len() > cap {
                    recent.remove(0);
                }
            }
            prop_assert!(d.len() <= cap);
        }
        // Everything in the model window is remembered.
        for k in &recent {
            prop_assert!(d.contains(k));
        }
    }

    #[test]
    fn ring_buffer_keeps_the_last_capacity_items(
        items in prop::collection::vec(any::<i64>(), 1..300),
        cap in 1usize..32,
    ) {
        let mut r = RingBuffer::new(cap);
        for &x in &items {
            r.push(x);
        }
        let expected: Vec<i64> =
            items.iter().rev().take(cap).rev().copied().collect();
        let got: Vec<i64> = r.iter().copied().collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(r.latest(), items.last());
    }

    #[test]
    fn summary_matches_naive_computation(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&samples).unwrap();
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        prop_assert!((s.mean - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(s.max, max);
        prop_assert_eq!(s.min, min);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.error <= s.std_dev + 1e-12);
    }

    #[test]
    fn trim_outliers_is_idempotent_enough(
        samples in prop::collection::vec(-100f64..100.0, 3..100),
    ) {
        let once = trim_outliers(&samples, 3.0);
        prop_assert!(once.len() <= samples.len());
        // Survivors are a subsequence of the input.
        let mut it = samples.iter();
        for v in &once {
            prop_assert!(it.any(|x| x == v), "order preserved");
        }
    }

    #[test]
    fn paper_protocol_bounds(samples in prop::collection::vec(0f64..1e4, 0..200), keep in 1usize..150) {
        let kept = paper_protocol(&samples, keep);
        prop_assert!(kept.len() <= keep.min(samples.len()));
    }

    #[test]
    fn config_roundtrips_through_display(
        entries in prop::collection::btree_map("[a-z][a-z0-9.]{0,12}", "[ -<>-~]{0,20}", 0..20),
    ) {
        // Values avoid '=' (excluded from the char class) and leading or
        // trailing spaces are trimmed by the parser, so trim the model.
        let mut c = Config::new();
        for (k, v) in &entries {
            c.set(k, v);
        }
        let reparsed = Config::parse(&c.to_string()).unwrap();
        for (k, v) in &entries {
            prop_assert_eq!(reparsed.get(k), Some(v.trim()), "key {}", k);
        }
    }

    #[test]
    fn rate_meter_counts_window_events(
        gaps in prop::collection::vec(0u64..50, 1..100),
        window in 1u64..200,
    ) {
        let mut m = RateMeter::new(window, 4096);
        let mut times = Vec::new();
        let mut t = 0u64;
        for g in gaps {
            t += g;
            m.record(t);
            times.push(t);
        }
        let now = t;
        let expected =
            times.iter().filter(|&&x| x >= now.saturating_sub(window)).count();
        prop_assert_eq!(m.count(now), expected);
    }

    #[test]
    fn uuid_parse_display_roundtrip(bits in any::<u128>()) {
        let u = Uuid::from_random_bits(bits);
        let parsed: Uuid = u.to_string().parse().unwrap();
        prop_assert_eq!(parsed, u);
    }
}

//! The paper's five-site WAN testbed (Table 1) as a network model.
//!
//! The evaluation ran five brokers on hosts in Indianapolis (IN), the
//! University of Minnesota (MN), NCSA (IL), Florida State (FL) and
//! Cardiff (UK), with the discovery client usually in Bloomington (IN) —
//! the Community Grids Lab, where multicast was available but filtered at
//! the lab boundary. [`WanModel`] captures the site inventory and a
//! one-way latency matrix calibrated to 2005-era Internet paths, and
//! knows how to install itself into a [`NetworkModel`].

use std::fmt;
use std::time::Duration;

use nb_wire::{NodeId, RealmId};

use crate::link::{LinkSpec, NetworkModel};

/// Index of a site within the [`WanModel`].
pub type SiteIdx = usize;

/// One site of the testbed.
#[derive(Debug, Clone)]
pub struct Site {
    /// Short name used in figure labels ("Bloomington", "Cardiff" …).
    pub name: &'static str,
    /// Hostname of the machine at this site (Table 1).
    pub host: &'static str,
    /// Location string (Table 1).
    pub location: &'static str,
    /// Machine specification summary (Table 1, `uname -a`).
    pub machine: &'static str,
    /// JVM version the paper ran (Table 1); retained for the inventory
    /// printout — this reproduction runs native code.
    pub jvm: &'static str,
    /// Network realm: one per site; multicast never crosses it.
    pub realm: RealmId,
    /// Memory available to a broker process on this machine (bytes);
    /// feeds the usage metric in discovery responses.
    pub total_memory: u64,
}

/// The Bloomington client lab (site 0 in the model).
pub const BLOOMINGTON: SiteIdx = 0;
/// complexity.ucs.indiana.edu — Indianapolis, IN.
pub const INDIANAPOLIS: SiteIdx = 1;
/// webis.msi.umn.edu — University of Minnesota.
pub const UMN: SiteIdx = 2;
/// tungsten.ncsa.uiuc.edu — NCSA, UIUC, IL.
pub const NCSA: SiteIdx = 3;
/// pamd2.fsit.fsu.edu — Florida State University.
pub const FSU: SiteIdx = 4;
/// bouscat.cs.cf.ac.uk — Cardiff, UK.
pub const CARDIFF: SiteIdx = 5;

const GIB: u64 = 1024 * 1024 * 1024;

/// The Table-1 testbed: sites plus a one-way latency matrix.
#[derive(Debug, Clone)]
pub struct WanModel {
    sites: Vec<Site>,
    /// One-way latency in milliseconds, symmetric.
    one_way_ms: Vec<Vec<f64>>,
}

impl Default for WanModel {
    fn default() -> Self {
        WanModel::paper()
    }
}

impl WanModel {
    /// The paper's testbed.
    pub fn paper() -> WanModel {
        let sites = vec![
            Site {
                name: "Bloomington",
                host: "gridfarm.ucs.indiana.edu",
                location: "Bloomington, IN, USA (Community Grids Lab)",
                machine: "Linux x86 lab workstation",
                jvm: "Java HotSpot(TM) Client VM 1.4.2",
                realm: RealmId(0),
                total_memory: GIB,
            },
            Site {
                name: "Indianapolis",
                host: "complexity.ucs.indiana.edu",
                location: "Indianapolis, IN, USA",
                machine: "SunOS 5.9 Generic sun4u sparc SUNW,Sun-Fire-880",
                jvm: "Java HotSpot(TM) Client VM 1.5.0-beta",
                realm: RealmId(1),
                total_memory: 8 * GIB,
            },
            Site {
                name: "UMN",
                host: "webis.msi.umn.edu",
                location: "University of Minnesota, Minneapolis, MN, USA",
                machine: "Linux 2.6 x86_64 AMD Opteron(tm) Processor 240",
                jvm: "Java HotSpot(TM) 64-Bit Server VM (Blackdown)",
                realm: RealmId(2),
                total_memory: 4 * GIB,
            },
            Site {
                name: "NCSA",
                host: "tungsten.ncsa.uiuc.edu",
                location: "NCSA, UIUC, IL, USA",
                machine: "Linux 2.4 SMP i686 (tungsten cluster node)",
                jvm: "Java HotSpot(TM) Client VM 1.4.1_01",
                realm: RealmId(3),
                total_memory: 2 * GIB,
            },
            Site {
                name: "FSU",
                host: "pamd2.fsit.fsu.edu",
                location: "Florida State University, Tallahassee, FL, USA",
                machine: "Linux 2.4 SMP i686",
                jvm: "Java HotSpot(TM) Client VM (Blackdown beta)",
                realm: RealmId(4),
                total_memory: GIB,
            },
            Site {
                name: "Cardiff",
                host: "bouscat.cs.cf.ac.uk",
                location: "Cardiff University, Cardiff, UK",
                machine: "Linux 2.4 SMP i686",
                jvm: "Java HotSpot(TM) Client VM 1.4.1_01",
                realm: RealmId(5),
                total_memory: GIB,
            },
        ];
        // One-way latencies (ms), calibrated to 2005 Abilene/GEANT paths:
        // regional Indiana hops are a couple of ms, Midwest hops ~5-15 ms,
        // IN->FL ~20 ms, and the transatlantic hop to Cardiff dominates.
        let m = vec![
            //            Blo   Indy  UMN   NCSA  FSU   Cardiff
            /* Blo  */ vec![0.0, 1.5, 14.0, 6.0, 22.0, 54.0],
            /* Indy */ vec![1.5, 0.0, 13.0, 5.0, 21.0, 53.0],
            /* UMN  */ vec![14.0, 13.0, 0.0, 9.0, 30.0, 60.0],
            /* NCSA */ vec![6.0, 5.0, 9.0, 0.0, 24.0, 57.0],
            /* FSU  */ vec![22.0, 21.0, 30.0, 24.0, 0.0, 65.0],
            /* Crdf */ vec![54.0, 53.0, 60.0, 57.0, 65.0, 0.0],
        ];
        WanModel { sites, one_way_ms: m }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the model has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The site at `idx`.
    pub fn site(&self, idx: SiteIdx) -> &Site {
        &self.sites[idx]
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// The five broker sites of the paper's experiments (everything but
    /// the Bloomington client lab).
    pub fn broker_sites(&self) -> [SiteIdx; 5] {
        [INDIANAPOLIS, UMN, NCSA, FSU, CARDIFF]
    }

    /// One-way latency between two sites.
    pub fn one_way(&self, a: SiteIdx, b: SiteIdx) -> Duration {
        Duration::from_micros((self.one_way_ms[a][b] * 1e3) as u64)
    }

    /// The WAN link spec between two sites (loss grows with distance),
    /// or a LAN spec within one site.
    pub fn link_spec(&self, a: SiteIdx, b: SiteIdx) -> LinkSpec {
        if a == b {
            LinkSpec::lan()
        } else {
            LinkSpec::wan(self.one_way(a, b))
        }
    }

    /// Installs the pairwise links between already-registered nodes whose
    /// site placement is given by `placement: (node, site)`.
    pub fn install(&self, network: &mut NetworkModel, placement: &[(NodeId, SiteIdx)]) {
        for (i, &(na, sa)) in placement.iter().enumerate() {
            for &(nb, sb) in placement.iter().skip(i + 1) {
                network.set_link(na, nb, self.link_spec(sa, sb));
            }
        }
    }
}

impl fmt::Display for WanModel {
    /// Renders the Table-1 style machine inventory.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<13} {:<28} {:<46} {:<10}",
            "Site", "Host", "Machine", "Memory"
        )?;
        for s in &self.sites {
            writeln!(
                f,
                "{:<13} {:<28} {:<46} {:>6} MiB",
                s.name,
                s.host,
                s.machine,
                s.total_memory / (1024 * 1024)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let w = WanModel::paper();
        for a in 0..w.len() {
            assert_eq!(w.one_way(a, a), Duration::ZERO);
            for b in 0..w.len() {
                assert_eq!(w.one_way(a, b), w.one_way(b, a), "{a}<->{b}");
            }
        }
    }

    #[test]
    fn cardiff_is_farthest_from_bloomington() {
        let w = WanModel::paper();
        let d = |s| w.one_way(BLOOMINGTON, s);
        for s in [INDIANAPOLIS, UMN, NCSA, FSU] {
            assert!(d(CARDIFF) > d(s));
        }
        // And Indianapolis is nearest.
        for s in [UMN, NCSA, FSU, CARDIFF] {
            assert!(d(INDIANAPOLIS) < d(s));
        }
    }

    #[test]
    fn link_specs_reflect_distance() {
        let w = WanModel::paper();
        let near = w.link_spec(BLOOMINGTON, INDIANAPOLIS);
        let far = w.link_spec(BLOOMINGTON, CARDIFF);
        assert!(far.latency > near.latency);
        assert!(far.loss > near.loss);
        // same-site is a LAN
        assert_eq!(w.link_spec(FSU, FSU), LinkSpec::lan());
    }

    #[test]
    fn install_wires_all_pairs() {
        let w = WanModel::paper();
        let mut net = NetworkModel::new();
        let nodes: Vec<(NodeId, SiteIdx)> =
            (0..6).map(|i| (NodeId(i as u32), i as SiteIdx)).collect();
        for &(n, s) in &nodes {
            net.register_node(n, w.site(s).realm);
        }
        w.install(&mut net, &nodes);
        let spec = net.spec_between(NodeId(0), NodeId(5)).unwrap();
        assert_eq!(spec.latency, w.one_way(BLOOMINGTON, CARDIFF));
    }

    #[test]
    fn six_distinct_realms() {
        let w = WanModel::paper();
        let mut realms: Vec<u16> = w.sites().iter().map(|s| s.realm.0).collect();
        realms.sort_unstable();
        realms.dedup();
        assert_eq!(realms.len(), 6);
    }

    #[test]
    fn inventory_prints_all_hosts() {
        let text = WanModel::paper().to_string();
        for host in ["complexity.ucs.indiana.edu", "bouscat.cs.cf.ac.uk", "webis.msi.umn.edu"] {
            assert!(text.contains(host), "{host} missing from inventory");
        }
    }
}

//! Deterministic chaos engine: seeded fault schedules for [`crate::Sim`].
//!
//! A [`FaultPlan`] is an ordered list of `(at, Fault)` pairs. Plans are
//! built two ways:
//!
//! * **scripted** — the builder methods (`crash_at`, `flap_at`, …) append
//!   faults at explicit virtual times, for targeted regression tests;
//! * **generated** — [`FaultPlan::generate`] draws a randomized schedule
//!   from its *own* `StdRng` seeded with a campaign seed, so the schedule
//!   is a pure function of `(seed, profile, targets, horizon)` and never
//!   depends on workload interleaving. The same seed replays the
//!   identical schedule bit-for-bit; [`FaultPlan::describe`] renders the
//!   canonical text form that campaign reports embed and determinism
//!   tests compare byte-for-byte.
//!
//! Installing a plan ([`crate::Sim::apply_fault_plan`] or
//! [`ChaosScheduler::install`]) pushes each fault into the event queue;
//! faults execute at their scheduled instant interleaved with protocol
//! events, and everything downstream (packet fates, retries, lease
//! expiries) remains driven by the sim's single seeded RNG.

use std::fmt;
use std::time::Duration;

use nb_wire::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sim::Sim;

/// Per-datagram fault probabilities, applied to every datagram that the
/// loss model decided to deliver. All-zero means inactive: the sim rolls
/// no extra dice, so legacy seeds stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketFaults {
    /// Probability a delivered datagram arrives twice.
    pub duplicate: f64,
    /// Probability a datagram is corrupted in flight (dropped at the
    /// receiver as a checksum failure, counted separately from loss).
    pub corrupt: f64,
    /// Probability a datagram is held back and re-injected later, letting
    /// younger packets overtake it.
    pub reorder: f64,
    /// Maximum extra delay applied to reordered packets and to the second
    /// copy of duplicated packets (uniformly sampled).
    pub extra_delay: Duration,
}

impl PacketFaults {
    /// No packet faults (the default).
    pub fn none() -> PacketFaults {
        PacketFaults { duplicate: 0.0, corrupt: 0.0, reorder: 0.0, extra_delay: Duration::ZERO }
    }

    /// A mildly hostile network: 2% duplication, 1% corruption, 5%
    /// reordering with up to 80 ms of extra delay.
    pub fn unruly() -> PacketFaults {
        PacketFaults {
            duplicate: 0.02,
            corrupt: 0.01,
            reorder: 0.05,
            extra_delay: Duration::from_millis(80),
        }
    }

    /// Whether any fault probability is non-zero. When false the sim's
    /// send path consumes zero additional RNG draws.
    pub fn is_active(&self) -> bool {
        self.duplicate > 0.0 || self.corrupt > 0.0 || self.reorder > 0.0
    }
}

impl Default for PacketFaults {
    fn default() -> PacketFaults {
        PacketFaults::none()
    }
}

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Take the node down (state preserved, as [`crate::Sim::crash`]).
    Crash { node: NodeId },
    /// Bring a crashed node back. With `lose_state` the actor is rebuilt
    /// from its respawn factory (registered via
    /// [`crate::Sim::set_respawn`]) — volatile state such as registries,
    /// caches and pending timers is gone; without it this is a plain
    /// [`crate::Sim::revive`].
    Restart { node: NodeId, lose_state: bool },
    /// Sever both directions between `a` and `b`.
    Partition { a: NodeId, b: NodeId },
    /// Restore both directions between `a` and `b`.
    Heal { a: NodeId, b: NodeId },
    /// Sever only `from -> to` (asymmetric partition: replies still flow).
    PartitionOneWay { from: NodeId, to: NodeId },
    /// Restore the directed path `from -> to`.
    HealOneWay { from: NodeId, to: NodeId },
    /// Activate per-datagram duplication/corruption/reordering.
    SetPacketFaults { faults: PacketFaults },
    /// Deactivate per-datagram faults.
    ClearPacketFaults,
    /// Freeze the node for `dur` — a stop-the-world pause: every event
    /// addressed to it (deliveries, timers, injects) is deferred until
    /// the stall ends, then processed in original order.
    Stall { node: NodeId, dur: Duration },
    /// Step the node's raw hardware clock by `delta_ns` (its NTP estimate
    /// goes stale until the next sync or estimate override).
    ClockStep { node: NodeId, delta_ns: i64 },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Crash { node } => write!(f, "crash node={}", node.0),
            Fault::Restart { node, lose_state } => {
                write!(f, "restart node={} lose_state={}", node.0, lose_state)
            }
            Fault::Partition { a, b } => write!(f, "partition a={} b={}", a.0, b.0),
            Fault::Heal { a, b } => write!(f, "heal a={} b={}", a.0, b.0),
            Fault::PartitionOneWay { from, to } => {
                write!(f, "partition_one_way from={} to={}", from.0, to.0)
            }
            Fault::HealOneWay { from, to } => {
                write!(f, "heal_one_way from={} to={}", from.0, to.0)
            }
            Fault::SetPacketFaults { faults } => write!(
                f,
                "set_packet_faults dup={:.4} corrupt={:.4} reorder={:.4} extra_us={}",
                faults.duplicate,
                faults.corrupt,
                faults.reorder,
                faults.extra_delay.as_micros()
            ),
            Fault::ClearPacketFaults => write!(f, "clear_packet_faults"),
            Fault::Stall { node, dur } => {
                write!(f, "stall node={} dur_us={}", node.0, dur.as_micros())
            }
            Fault::ClockStep { node, delta_ns } => {
                write!(f, "clock_step node={} delta_ns={}", node.0, delta_ns)
            }
        }
    }
}

/// A fault with its scheduled (virtual) time, relative to plan install.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedFault {
    /// Offset from the instant the plan is installed.
    pub at: Duration,
    /// What happens.
    pub fault: Fault,
}

/// Which nodes a generated plan may target, by role. Restart-class
/// faults (crash/restart, stalls) hit infrastructure (BDNs + brokers);
/// partitions and clock steps may involve any node.
#[derive(Debug, Clone, Default)]
pub struct ChaosTargets {
    /// Broker discovery nodes (restartable; prime lease-expiry targets).
    pub bdns: Vec<NodeId>,
    /// Brokers (restartable).
    pub brokers: Vec<NodeId>,
    /// Client/entity nodes (partition + clock-step targets only).
    pub clients: Vec<NodeId>,
}

impl ChaosTargets {
    fn restartable(&self) -> Vec<NodeId> {
        let mut v = self.bdns.clone();
        v.extend_from_slice(&self.brokers);
        v
    }

    fn all(&self) -> Vec<NodeId> {
        let mut v = self.restartable();
        v.extend_from_slice(&self.clients);
        v
    }
}

/// Knobs for randomized plan generation: how many faults of each class
/// to draw over the horizon and their magnitude ranges.
#[derive(Debug, Clone)]
pub struct ChaosProfile {
    /// Crash→restart cycles on restartable nodes.
    pub restarts: u32,
    /// Probability a restart loses volatile state.
    pub lose_state_prob: f64,
    /// Down-time range between a crash and its restart.
    pub down_min: Duration,
    /// See `down_min`.
    pub down_max: Duration,
    /// Partition-then-heal link flaps.
    pub link_flaps: u32,
    /// Probability a flap is asymmetric (one direction only).
    pub one_way_prob: f64,
    /// Flap duration range.
    pub flap_min: Duration,
    /// See `flap_min`.
    pub flap_max: Duration,
    /// Transient stop-the-world stalls ("GC pauses").
    pub stalls: u32,
    /// Stall duration range.
    pub stall_min: Duration,
    /// See `stall_min`.
    pub stall_max: Duration,
    /// Hardware clock steps.
    pub clock_steps: u32,
    /// Maximum magnitude of a clock step (sign is drawn).
    pub clock_step_max: Duration,
    /// Windows during which `packet_faults` is active.
    pub packet_fault_windows: u32,
    /// The per-datagram faults applied inside those windows.
    pub packet_faults: PacketFaults,
    /// Packet-fault window duration range.
    pub window_min: Duration,
    /// See `window_min`.
    pub window_max: Duration,
}

impl ChaosProfile {
    /// A light campaign: one lossy restart, one flap, one stall.
    pub fn light() -> ChaosProfile {
        ChaosProfile {
            restarts: 1,
            lose_state_prob: 0.5,
            down_min: Duration::from_secs(2),
            down_max: Duration::from_secs(8),
            link_flaps: 1,
            one_way_prob: 0.25,
            flap_min: Duration::from_secs(2),
            flap_max: Duration::from_secs(10),
            stalls: 1,
            stall_min: Duration::from_millis(200),
            stall_max: Duration::from_secs(2),
            clock_steps: 1,
            clock_step_max: Duration::from_millis(250),
            packet_fault_windows: 1,
            packet_faults: PacketFaults::unruly(),
            window_min: Duration::from_secs(5),
            window_max: Duration::from_secs(15),
        }
    }

    /// A heavy campaign: several restarts and flaps, longer stalls.
    pub fn heavy() -> ChaosProfile {
        ChaosProfile {
            restarts: 3,
            lose_state_prob: 0.7,
            down_min: Duration::from_secs(2),
            down_max: Duration::from_secs(12),
            link_flaps: 3,
            one_way_prob: 0.4,
            flap_min: Duration::from_secs(3),
            flap_max: Duration::from_secs(15),
            stalls: 2,
            stall_min: Duration::from_millis(500),
            stall_max: Duration::from_secs(4),
            clock_steps: 2,
            clock_step_max: Duration::from_secs(1),
            packet_fault_windows: 2,
            packet_faults: PacketFaults::unruly(),
            window_min: Duration::from_secs(5),
            window_max: Duration::from_secs(20),
        }
    }
}

/// An ordered fault schedule. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<TimedFault>,
}

impl FaultPlan {
    /// An empty plan, for scripting.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Appends an arbitrary fault at `at`.
    pub fn fault_at(mut self, at: Duration, fault: Fault) -> FaultPlan {
        self.events.push(TimedFault { at, fault });
        self
    }

    /// Crash `node` at `at`.
    pub fn crash_at(self, at: Duration, node: NodeId) -> FaultPlan {
        self.fault_at(at, Fault::Crash { node })
    }

    /// Restart `node` at `at`, optionally losing volatile state.
    pub fn restart_at(self, at: Duration, node: NodeId, lose_state: bool) -> FaultPlan {
        self.fault_at(at, Fault::Restart { node, lose_state })
    }

    /// Crash `node` at `at` and restart it with state loss after `down`.
    pub fn lossy_restart_at(self, at: Duration, node: NodeId, down: Duration) -> FaultPlan {
        self.crash_at(at, node).restart_at(at + down, node, true)
    }

    /// Sever `a`↔`b` at `at` and heal it after `dur` (a link flap).
    pub fn flap_at(self, at: Duration, a: NodeId, b: NodeId, dur: Duration) -> FaultPlan {
        self.fault_at(at, Fault::Partition { a, b }).fault_at(at + dur, Fault::Heal { a, b })
    }

    /// Sever only `from -> to` at `at` and heal it after `dur`.
    pub fn one_way_flap_at(
        self,
        at: Duration,
        from: NodeId,
        to: NodeId,
        dur: Duration,
    ) -> FaultPlan {
        self.fault_at(at, Fault::PartitionOneWay { from, to })
            .fault_at(at + dur, Fault::HealOneWay { from, to })
    }

    /// Stall `node` for `dur` starting at `at`.
    pub fn stall_at(self, at: Duration, node: NodeId, dur: Duration) -> FaultPlan {
        self.fault_at(at, Fault::Stall { node, dur })
    }

    /// Step `node`'s hardware clock by `delta_ns` at `at`.
    pub fn clock_step_at(self, at: Duration, node: NodeId, delta_ns: i64) -> FaultPlan {
        self.fault_at(at, Fault::ClockStep { node, delta_ns })
    }

    /// Activate packet faults over `[at, at + dur)`.
    pub fn packet_fault_window(
        self,
        at: Duration,
        dur: Duration,
        faults: PacketFaults,
    ) -> FaultPlan {
        self.fault_at(at, Fault::SetPacketFaults { faults })
            .fault_at(at + dur, Fault::ClearPacketFaults)
    }

    /// Draws a randomized schedule from a dedicated RNG seeded with
    /// `seed`. The result is a pure function of the arguments — it does
    /// not touch the sim's RNG, so installing a generated plan never
    /// perturbs packet-level randomness, and two calls with equal
    /// arguments return equal plans.
    pub fn generate(
        seed: u64,
        profile: &ChaosProfile,
        targets: &ChaosTargets,
        horizon: Duration,
    ) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        let h_ns = horizon.as_nanos() as u64;
        // Faults start after 5% of the horizon (let the deployment boot)
        // and are injected before 75% of it (leave room to recover).
        let window = |rng: &mut StdRng| {
            Duration::from_nanos(rng.gen_range(h_ns / 20..=h_ns * 3 / 4))
        };
        let dur_in = |rng: &mut StdRng, lo: Duration, hi: Duration| {
            let (lo, hi) = (lo.as_nanos() as u64, hi.as_nanos() as u64);
            Duration::from_nanos(if hi <= lo { lo } else { rng.gen_range(lo..=hi) })
        };

        let restartable = targets.restartable();
        for _ in 0..profile.restarts {
            if restartable.is_empty() {
                break;
            }
            let node = restartable[rng.gen_range(0..restartable.len())];
            let at = window(&mut rng);
            let down = dur_in(&mut rng, profile.down_min, profile.down_max);
            let lose = rng.gen::<f64>() < profile.lose_state_prob;
            plan = plan.crash_at(at, node).restart_at(at + down, node, lose);
        }

        let all = targets.all();
        for _ in 0..profile.link_flaps {
            if all.len() < 2 {
                break;
            }
            let a = all[rng.gen_range(0..all.len())];
            let mut b = all[rng.gen_range(0..all.len())];
            if b == a {
                b = all[(all.iter().position(|&n| n == a).unwrap() + 1) % all.len()];
            }
            let at = window(&mut rng);
            let dur = dur_in(&mut rng, profile.flap_min, profile.flap_max);
            plan = if rng.gen::<f64>() < profile.one_way_prob {
                plan.one_way_flap_at(at, a, b, dur)
            } else {
                plan.flap_at(at, a, b, dur)
            };
        }

        for _ in 0..profile.stalls {
            if restartable.is_empty() {
                break;
            }
            let node = restartable[rng.gen_range(0..restartable.len())];
            let at = window(&mut rng);
            let dur = dur_in(&mut rng, profile.stall_min, profile.stall_max);
            plan = plan.stall_at(at, node, dur);
        }

        for _ in 0..profile.clock_steps {
            if all.is_empty() {
                break;
            }
            let node = all[rng.gen_range(0..all.len())];
            let at = window(&mut rng);
            let max_ns = profile.clock_step_max.as_nanos() as i64;
            let delta = if max_ns == 0 { 0 } else { rng.gen_range(-max_ns..=max_ns) };
            plan = plan.clock_step_at(at, node, delta);
        }

        for _ in 0..profile.packet_fault_windows {
            let at = window(&mut rng);
            let dur = dur_in(&mut rng, profile.window_min, profile.window_max);
            plan = plan.packet_fault_window(at, dur, profile.packet_faults);
        }

        plan.sorted()
    }

    /// Stable-sorts the schedule by time (generation order breaks ties).
    pub fn sorted(mut self) -> FaultPlan {
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// The scheduled faults, in order.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The canonical text rendering: one line per fault, microsecond
    /// timestamps. Two plans are identical iff their descriptions are
    /// byte-identical — campaign reports embed this for determinism
    /// checks.
    pub fn describe(&self) -> String {
        let mut out = String::from("fault_plan v1\n");
        for ev in &self.events {
            out.push_str(&format!("t={}us {}\n", ev.at.as_micros(), ev.fault));
        }
        out
    }
}

/// Owns a [`FaultPlan`] and installs it into a [`Sim`]. Thin by design —
/// once installed, the sim's event queue *is* the scheduler; this type
/// exists so campaign code can hold a plan and its provenance together.
#[derive(Debug, Clone)]
pub struct ChaosScheduler {
    plan: FaultPlan,
    /// The seed the plan was generated from (`None` for scripted plans).
    pub seed: Option<u64>,
}

impl ChaosScheduler {
    /// Wraps a scripted plan.
    pub fn scripted(plan: FaultPlan) -> ChaosScheduler {
        ChaosScheduler { plan, seed: None }
    }

    /// Generates a randomized plan from `seed` (see [`FaultPlan::generate`]).
    pub fn generated(
        seed: u64,
        profile: &ChaosProfile,
        targets: &ChaosTargets,
        horizon: Duration,
    ) -> ChaosScheduler {
        ChaosScheduler { plan: FaultPlan::generate(seed, profile, targets, horizon), seed: Some(seed) }
    }

    /// The schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Queues every fault into `sim`, offset from the current virtual time.
    pub fn install(&self, sim: &mut Sim) {
        sim.apply_fault_plan(&self.plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> ChaosTargets {
        ChaosTargets {
            bdns: vec![NodeId(0)],
            brokers: vec![NodeId(1), NodeId(2), NodeId(3)],
            clients: vec![NodeId(4), NodeId(5)],
        }
    }

    #[test]
    fn generate_is_a_pure_function_of_seed() {
        let profile = ChaosProfile::heavy();
        let t = targets();
        let h = Duration::from_secs(120);
        let a = FaultPlan::generate(7, &profile, &t, h);
        let b = FaultPlan::generate(7, &profile, &t, h);
        assert_eq!(a, b);
        assert_eq!(a.describe(), b.describe());
        let c = FaultPlan::generate(8, &profile, &t, h);
        assert_ne!(a.describe(), c.describe(), "different seeds diverge");
    }

    #[test]
    fn generated_plans_are_sorted_and_in_window() {
        let plan = FaultPlan::generate(3, &ChaosProfile::heavy(), &targets(), Duration::from_secs(100));
        assert!(!plan.is_empty());
        let mut last = Duration::ZERO;
        for ev in plan.events() {
            assert!(ev.at >= last, "schedule must be time-ordered");
            last = ev.at;
            assert!(ev.at >= Duration::from_secs(5), "faults start after boot window");
        }
    }

    #[test]
    fn scripted_builder_orders_and_describes() {
        let plan = FaultPlan::new()
            .lossy_restart_at(Duration::from_secs(10), NodeId(2), Duration::from_secs(5))
            .flap_at(Duration::from_secs(3), NodeId(0), NodeId(1), Duration::from_secs(2))
            .sorted();
        let desc = plan.describe();
        let lines: Vec<&str> = desc.lines().collect();
        assert_eq!(lines[0], "fault_plan v1");
        assert_eq!(lines[1], "t=3000000us partition a=0 b=1");
        assert_eq!(lines[2], "t=5000000us heal a=0 b=1");
        assert_eq!(lines[3], "t=10000000us crash node=2");
        assert_eq!(lines[4], "t=15000000us restart node=2 lose_state=true");
    }

    #[test]
    fn packet_faults_active_flag() {
        assert!(!PacketFaults::none().is_active());
        assert!(PacketFaults::unruly().is_active());
        let mut f = PacketFaults::none();
        f.reorder = 0.1;
        assert!(f.is_active());
    }
}

//! A wire-level NTP implementation.
//!
//! The paper's nodes run an NTP service that computes local clock offsets
//! within 3–5 s of node start (§5). The simulator can model that outcome
//! directly ([`crate::clock::ClockProfile`]), but this module also
//! implements the *protocol*: an [`NtpServer`] actor answering time
//! requests, and an embeddable [`NtpClient`] that runs the classic
//! four-timestamp exchange
//!
//! ```text
//! offset = ((t1 - t0) + (t2 - t3)) / 2
//! delay  = (t3 - t0) - (t2 - t1)
//! ```
//!
//! over several rounds, keeps the minimum-delay sample (standard NTP
//! clock-filter behaviour), and installs the resulting offset estimate
//! into the node's clock. The residual error then comes from genuine path
//! jitter/asymmetry rather than model fiat.

use std::time::Duration;

use nb_wire::addr::well_known;
use nb_wire::{Endpoint, Message, NodeId, Port};

use crate::impl_actor_any;
use crate::runtime::{Actor, Context, Incoming};

/// A time server: answers [`Message::NtpRequest`] datagrams on the NTP
/// port with its own UTC estimate (give it a perfect clock to make it a
/// stratum-1 reference).
#[derive(Debug, Default)]
pub struct NtpServer {
    /// Requests answered (observability for tests).
    pub served: u64,
}

impl Actor for NtpServer {
    fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
        if let Incoming::Datagram { msg, to_port, .. } = event {
            if let Message::NtpRequest { client_transmit, reply_to } = *msg.message() {
                self.served += 1;
                let server_receive = ctx.utc_micros();
                // Transmit immediately; receive and transmit are one reading
                // apart in this model (service time is negligible vs. path).
                let resp = Message::NtpResponse {
                    client_transmit,
                    server_receive,
                    server_transmit: ctx.utc_micros(),
                };
                ctx.send_udp(to_port, reply_to, &resp);
            }
        }
    }
    impl_actor_any!();
}

/// Progress of an [`NtpClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NtpPhase {
    /// Not started.
    Idle,
    /// Rounds in flight.
    Sampling,
    /// Offset installed into the node clock.
    Done,
}

/// An embeddable NTP client sub-state-machine.
///
/// Owners call [`NtpClient::start`] from their `on_start` and forward
/// every event to [`NtpClient::handle`]; it returns `true` when the event
/// was consumed. The client sends one request per round, retransmitting
/// on its round timer if a response is lost, and installs the
/// minimum-delay offset after the final round.
#[derive(Debug)]
pub struct NtpClient {
    server: Endpoint,
    rounds: u32,
    interval: Duration,
    timer_token: u64,
    rounds_fired: u32,
    /// Best (lowest-delay) sample so far: `(delay_us, offset_us)`.
    best: Option<(i64, i64)>,
    /// Samples actually received (observability).
    pub samples: Vec<(i64, i64)>,
    /// Current phase.
    pub phase: NtpPhase,
}

impl NtpClient {
    /// A client of `server`, sampling `rounds` times spaced by
    /// `interval`, using `timer_token` for its round timer.
    pub fn new(server: NodeId, rounds: u32, interval: Duration, timer_token: u64) -> NtpClient {
        NtpClient {
            server: Endpoint::new(server, well_known::NTP),
            rounds: rounds.max(1),
            interval,
            timer_token,
            rounds_fired: 0,
            best: None,
            samples: Vec::new(),
            phase: NtpPhase::Idle,
        }
    }

    /// The local UDP port used for the exchange.
    fn local_port() -> Port {
        well_known::NTP
    }

    /// Kicks off sampling.
    pub fn start(&mut self, ctx: &mut dyn Context) {
        self.phase = NtpPhase::Sampling;
        self.send_round(ctx);
    }

    fn send_round(&mut self, ctx: &mut dyn Context) {
        self.rounds_fired += 1;
        let req = Message::NtpRequest {
            client_transmit: ctx.raw_local_micros(),
            reply_to: Endpoint::new(ctx.me(), Self::local_port()),
        };
        ctx.send_udp(Self::local_port(), self.server, &req);
        ctx.set_timer(self.interval, self.timer_token);
    }

    fn finish(&mut self, ctx: &mut dyn Context) {
        self.phase = NtpPhase::Done;
        ctx.cancel_timer(self.timer_token);
        if let Some((_delay, offset_us)) = self.best {
            // `offset` estimates (server_utc - client_raw); the clock
            // stores the estimate of (client_raw - utc).
            ctx.set_clock_estimate_ns(-(offset_us.saturating_mul(1_000)));
        }
    }

    /// Feeds an event; returns `true` if it belonged to the NTP exchange.
    pub fn handle(&mut self, event: &Incoming, ctx: &mut dyn Context) -> bool {
        if self.phase != NtpPhase::Sampling {
            return false;
        }
        match event {
            Incoming::Datagram { msg, .. } => {
                let Message::NtpResponse { client_transmit, server_receive, server_transmit } =
                    *msg.message()
                else {
                    return false;
                };
                let t0 = client_transmit as i64;
                let t1 = server_receive as i64;
                let t2 = server_transmit as i64;
                let t3 = ctx.raw_local_micros() as i64;
                let delay = (t3 - t0) - (t2 - t1);
                let offset = ((t1 - t0) + (t2 - t3)) / 2;
                self.samples.push((delay, offset));
                if self.best.is_none_or(|(d, _)| delay < d) {
                    self.best = Some((delay, offset));
                }
                if self.rounds_fired >= self.rounds {
                    self.finish(ctx);
                }
                true
            }
            Incoming::Timer { token } if *token == self.timer_token => {
                if self.rounds_fired >= self.rounds {
                    // Final round's response was lost; settle for what we
                    // have (or remain unsynced if we have nothing).
                    if self.best.is_some() {
                        self.finish(ctx);
                    } else {
                        self.send_round(ctx);
                    }
                } else {
                    self.send_round(ctx);
                }
                true
            }
            _ => false,
        }
    }
}

/// A standalone actor wrapping [`NtpClient`] (for tests and for nodes
/// whose only job is timekeeping).
#[derive(Debug)]
pub struct NtpClientActor {
    /// The embedded client.
    pub client: NtpClient,
}

impl NtpClientActor {
    /// Samples `server` five times, 200 ms apart.
    pub fn new(server: NodeId) -> NtpClientActor {
        NtpClientActor { client: NtpClient::new(server, 5, Duration::from_millis(200), 0xA7B0) }
    }
}

impl Actor for NtpClientActor {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        self.client.start(ctx);
    }
    fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
        self.client.handle(&event, ctx);
    }
    impl_actor_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockProfile;
    use crate::link::LinkSpec;
    use crate::sim::Sim;
    use nb_wire::RealmId;

    fn run_sync(seed: u64, loss: f64) -> (i64, NtpPhase, usize) {
        // Clock profile with large true offsets but *no* modeled sync:
        // the protocol must do the work.
        let profile = ClockProfile {
            max_true_offset: Duration::from_secs(1),
            min_residual: Duration::ZERO,
            max_residual: Duration::ZERO,
            // Modeled sync far in the future so it never interferes.
            min_sync_delay: Duration::from_secs(86_400),
            max_sync_delay: Duration::from_secs(86_400),
        };
        let mut sim = Sim::with_clock_profile(seed, profile);
        sim.network_mut().inter_realm_spec =
            LinkSpec::wan(Duration::from_millis(25)).with_loss(loss);
        let server =
            sim.add_node_with_clock("time", RealmId(0), ClockProfile::perfect(), Box::new(NtpServer::default()));
        let client = sim.add_node("client", RealmId(1), Box::new(NtpClientActor::new(server)));
        sim.run_for(Duration::from_secs(10));
        let utc = sim.utc_of(client).unwrap() as i64;
        let truth = crate::time::true_utc_micros(sim.now()) as i64;
        let phase = sim.actor::<NtpClientActor>(client).unwrap().client.phase;
        let nsamples = sim.actor::<NtpClientActor>(client).unwrap().client.samples.len();
        (utc - truth, phase, nsamples)
    }

    #[test]
    fn protocol_sync_reaches_paper_accuracy() {
        for seed in 0..10 {
            let (err_us, phase, _) = run_sync(seed, 0.0);
            assert_eq!(phase, NtpPhase::Done, "seed {seed}");
            assert!(
                err_us.unsigned_abs() <= 20_000,
                "seed {seed}: residual {err_us}µs above the paper's 20ms band"
            );
        }
    }

    #[test]
    fn survives_response_loss() {
        let (err_us, phase, nsamples) = run_sync(3, 0.4);
        assert_eq!(phase, NtpPhase::Done);
        assert!(nsamples >= 1);
        assert!(err_us.unsigned_abs() <= 20_000, "residual {err_us}µs");
    }

    #[test]
    fn server_counts_requests() {
        let mut sim = Sim::with_clock_profile(9, ClockProfile::perfect());
        sim.network_mut().inter_realm_spec =
            LinkSpec::wan(Duration::from_millis(5)).with_loss(0.0);
        let server = sim.add_node("time", RealmId(0), Box::new(NtpServer::default()));
        sim.add_node("c1", RealmId(1), Box::new(NtpClientActor::new(server)));
        sim.add_node("c2", RealmId(1), Box::new(NtpClientActor::new(server)));
        sim.run_for(Duration::from_secs(5));
        assert_eq!(sim.actor::<NtpServer>(server).unwrap().served, 10);
    }

    #[test]
    fn offset_math_on_known_values() {
        // t0=100 (client), t1=1100, t2=1100 (server), t3=140 (client):
        // delay = 40 - 0 = 40, offset = (1000 + 960)/2 = 980.
        let t0 = 100i64;
        let t1 = 1100i64;
        let t2 = 1100i64;
        let t3 = 140i64;
        let delay = (t3 - t0) - (t2 - t1);
        let offset = ((t1 - t0) + (t2 - t3)) / 2;
        assert_eq!(delay, 40);
        assert_eq!(offset, 980);
    }
}

//! The actor abstraction all protocol logic is written against.
//!
//! Brokers, BDNs, discovery clients, NTP servers — every node is an
//! [`Actor`]: a state machine that reacts to [`Incoming`] events and acts
//! on the world exclusively through a [`Context`]. The same actor code
//! runs unmodified under the discrete-event engine ([`crate::sim::Sim`])
//! and the wall-clock threaded runtime ([`crate::threaded::ThreadedNet`]).

use std::any::Any;
use std::time::Duration;

use nb_wire::{Endpoint, GroupId, Message, NodeId, Port, RealmId, WireMsg};
use rand::RngCore;

use crate::time::SimTime;

/// An event delivered to an actor.
#[derive(Debug, Clone)]
pub enum Incoming {
    /// A UDP or multicast datagram arrived.
    Datagram {
        /// The sender's endpoint (source node + source port).
        from: Endpoint,
        /// The local port it arrived on.
        to_port: Port,
        /// The decoded payload, still attached to its wire frame so the
        /// receiver can peek or re-forward without re-encoding.
        msg: WireMsg,
    },
    /// One framed message arrived on a reliable (TCP-like) stream.
    Stream {
        /// The sender's endpoint.
        from: Endpoint,
        /// The local port it arrived on.
        to_port: Port,
        /// The decoded payload, still attached to its wire frame.
        msg: WireMsg,
    },
    /// A timer set via [`Context::set_timer`] fired.
    Timer {
        /// The caller-chosen token identifying the timer.
        token: u64,
    },
    /// The node's NTP service finished initialising; UTC estimates are
    /// now accurate to the configured residual.
    ClockSynced,
}

/// A node's interface to the world. Implemented by both runtimes.
pub trait Context {
    /// This node's identity.
    fn me(&self) -> NodeId;

    /// This node's network realm.
    fn realm(&self) -> RealmId;

    /// The node-local *monotonic* clock. Correct for measuring durations;
    /// not comparable across nodes.
    fn now(&self) -> SimTime;

    /// The node's current UTC estimate, in microseconds. Before NTP sync
    /// this can be off by seconds; afterwards by the NTP residual
    /// (1–20 ms under the paper's profile).
    fn utc_micros(&self) -> u64;

    /// Whether the node's NTP service has finished initialising.
    fn clock_synced(&self) -> bool;

    /// The node's *raw* local clock (µs), uncorrected by any NTP
    /// estimate. This is what a wire-level NTP client timestamps its
    /// exchanges with.
    fn raw_local_micros(&self) -> u64;

    /// Overrides the clock-offset estimate (ns). Used by the wire-level
    /// NTP client once it has computed an offset from server exchanges.
    fn set_clock_estimate_ns(&mut self, est_offset_ns: i64);

    /// Sends `msg` as an unreliable datagram from local `from_port`.
    fn send_udp(&mut self, from_port: Port, to: Endpoint, msg: &Message);

    /// Sends `msg` on a reliable, ordered stream from local `from_port`.
    /// Connection setup (one extra RTT) is modelled on first use of a
    /// `(local endpoint, remote endpoint)` pair.
    fn send_stream(&mut self, from_port: Port, to: Endpoint, msg: &Message);

    /// Sends an already-wrapped [`WireMsg`] as a datagram. Fan-out paths
    /// use this so the frame is encoded once and every send clones the
    /// handle. The default delegates to [`Context::send_udp`] (decoded
    /// message, legacy encode) so test doubles keep working unmodified;
    /// both runtimes override it with a zero-copy path.
    fn send_udp_wire(&mut self, from_port: Port, to: Endpoint, msg: &WireMsg) {
        self.send_udp(from_port, to, msg.message());
    }

    /// Stream counterpart of [`Context::send_udp_wire`].
    fn send_stream_wire(&mut self, from_port: Port, to: Endpoint, msg: &WireMsg) {
        self.send_stream(from_port, to, msg.message());
    }

    /// Sends on a reliable stream, preferring the negotiated v2 compact
    /// codec: when the runtime has v2 enabled, messages queued to the
    /// same link within one dispatch coalesce into multi-frame segments
    /// and topic symbols sync lazily per link. Callers use this only
    /// for peers that announced v2 capability on their link handshake.
    /// The default falls back to the per-message v1 stream path, so
    /// runtimes and test doubles without v2 support keep working
    /// unmodified.
    fn send_stream_v2(&mut self, from_port: Port, to: Endpoint, msg: &WireMsg) {
        self.send_stream_wire(from_port, to, msg);
    }

    /// Multicasts `msg` to every member of `group` within this node's
    /// realm. Cross-realm members never receive it (paper §9: "multicast
    /// was disabled for network traffic outside the lab").
    fn send_multicast(&mut self, from_port: Port, group: GroupId, to_port: Port, msg: &Message);

    /// Joins a multicast group (idempotent).
    fn join_group(&mut self, group: GroupId);

    /// Leaves a multicast group.
    fn leave_group(&mut self, group: GroupId);

    /// Arms a one-shot timer firing `delay` from now, identified by
    /// `token`. Re-arming an armed token replaces it.
    fn set_timer(&mut self, delay: Duration, token: u64);

    /// Cancels the timer with `token`, if armed.
    fn cancel_timer(&mut self, token: u64);

    /// Deterministic per-run randomness.
    fn rng(&mut self) -> &mut dyn RngCore;
}

/// A protocol state machine bound to one node.
pub trait Actor: Send + 'static {
    /// Invoked once when the node starts.
    fn on_start(&mut self, _ctx: &mut dyn Context) {}

    /// Invoked for every incoming event.
    fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context);

    /// Downcasting support so harnesses can inspect actor state after a
    /// run. Implementations are one-liners returning `self`.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Implements the two `as_any` boilerplate methods for an actor type.
#[macro_export]
macro_rules! impl_actor_any {
    () => {
        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
            self
        }
    };
}

/// A no-op actor: joins nothing, answers nothing. Handy as a placeholder
/// node in topology tests.
#[derive(Debug, Default)]
pub struct IdleActor;

impl Actor for IdleActor {
    fn on_incoming(&mut self, _event: Incoming, _ctx: &mut dyn Context) {}
    impl_actor_any!();
}

//! A wall-clock runtime for the same actors the simulator drives.
//!
//! Each node runs on its own thread; a central *wire* thread applies the
//! [`NetworkModel`] (latency, jitter, loss, realm-scoped multicast,
//! stream ordering + connection setup) to every message using a timer
//! heap, exactly like the discrete-event engine does in virtual time.
//! This proves the protocol stack is runtime-agnostic and powers the
//! runnable examples.

use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use nb_wire::{frame_message, Endpoint, GroupId, Message, NodeId, Port, RealmId, WireMsg, DEFAULT_TTL};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::clock::{ClockProfile, ClockState};
use crate::link::{DatagramFate, NetworkModel, StreamBook};
use crate::runtime::{Actor, Context, Incoming};
use crate::sim::NetStats;
use crate::time::SimTime;

enum NodeMsg {
    Event(Incoming),
    Stop,
}

/// Wire-thread operations. Message ops carry the full wire frame
/// (4-byte prelude + body); senders that already hold a [`WireMsg`]
/// clone its cached frame instead of encoding again.
enum WireOp {
    Datagram { from: Endpoint, to: Endpoint, bytes: Bytes },
    Stream { from: Endpoint, to: Endpoint, bytes: Bytes },
    Multicast { from: Endpoint, group: GroupId, to_port: Port, bytes: Bytes },
    ClockSync { node: NodeId, at: Instant },
    Stop,
}

struct Shared {
    network: Mutex<NetworkModel>,
    clocks: Mutex<HashMap<NodeId, ClockState>>,
    node_txs: Mutex<HashMap<NodeId, Sender<NodeMsg>>>,
    stats: Mutex<NetStats>,
    epoch: Instant,
    /// Multiplies every modelled latency (e.g. 0.1 runs WAN scenarios 10×
    /// faster in tests).
    time_scale: f64,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn scaled(&self, d: Duration) -> Duration {
        d.mul_f64(self.time_scale)
    }
}

struct Due {
    at: Instant,
    seq: u64,
    node: NodeId,
    incoming: Incoming,
}

impl PartialEq for Due {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Due {}
impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Due {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Per-node bookkeeping: display name, inbox, and the join handle that
/// yields the actor back at shutdown.
type NodeHandle = (String, Sender<NodeMsg>, JoinHandle<Box<dyn Actor>>);

/// The threaded runtime.
pub struct ThreadedNet {
    shared: Arc<Shared>,
    wire_tx: Sender<WireOp>,
    wire_join: Option<JoinHandle<()>>,
    /// Ordered so shutdown stops and joins nodes in id order, giving the
    /// teardown a deterministic sequence (and D002-clean iteration).
    nodes: BTreeMap<NodeId, NodeHandle>,
    next_node: u32,
    seed: u64,
}

impl ThreadedNet {
    /// A runtime with real-time latencies.
    pub fn new(seed: u64) -> ThreadedNet {
        ThreadedNet::with_time_scale(seed, 1.0)
    }

    /// A runtime whose modelled latencies are multiplied by `time_scale`.
    pub fn with_time_scale(seed: u64, time_scale: f64) -> ThreadedNet {
        let shared = Arc::new(Shared {
            network: Mutex::new(NetworkModel::new()),
            clocks: Mutex::new(HashMap::new()),
            node_txs: Mutex::new(HashMap::new()),
            stats: Mutex::new(NetStats::default()),
            epoch: Instant::now(),
            time_scale,
        });
        let (wire_tx, wire_rx) = unbounded();
        let wire_shared = Arc::clone(&shared);
        let wire_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let wire_join = std::thread::Builder::new()
            .name("nb-wire".into())
            .spawn(move || wire_thread(wire_shared, wire_rx, wire_seed))
            .expect("spawn wire thread");
        ThreadedNet {
            shared,
            wire_tx,
            wire_join: Some(wire_join),
            nodes: BTreeMap::new(),
            next_node: 0,
            seed,
        }
    }

    /// Mutates the network model (links, partitions, defaults).
    pub fn configure_network(&self, f: impl FnOnce(&mut NetworkModel)) {
        f(&mut self.shared.network.lock());
    }

    /// Time since the runtime epoch.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Snapshot of the wire thread's traffic counters.
    pub fn stats(&self) -> NetStats {
        self.shared.stats.lock().clone()
    }

    /// A node's current UTC estimate, if it exists.
    pub fn utc_of(&self, node: NodeId) -> Option<u64> {
        let now = self.shared.now();
        self.shared.clocks.lock().get(&node).map(|c| c.utc_micros(now))
    }

    /// Adds a node running `actor` with the given clock profile.
    pub fn add_node(
        &mut self,
        name: &str,
        realm: RealmId,
        profile: ClockProfile,
        actor: Box<dyn Actor>,
    ) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        let mut seed_rng = StdRng::seed_from_u64(self.seed ^ u64::from(id.0).wrapping_mul(0xD6E8_FEB8));
        let clock = profile.sample(self.shared.now(), &mut seed_rng);
        let sync_delay = clock.sync_at - self.shared.now();
        self.shared.clocks.lock().insert(id, clock);
        self.shared.network.lock().register_node(id, realm);

        let (tx, rx) = unbounded();
        self.shared.node_txs.lock().insert(id, tx.clone());
        let shared = Arc::clone(&self.shared);
        let wire_tx = self.wire_tx.clone();
        let node_seed = self.seed ^ (u64::from(id.0) << 32) ^ 0xABCD;
        let join = std::thread::Builder::new()
            .name(format!("nb-node-{}", name))
            .spawn(move || node_thread(id, realm, shared, wire_tx, rx, actor, node_seed))
            .expect("spawn node thread");
        // Schedule the modeled NTP sync completion.
        let _ = self
            .wire_tx
            .send(WireOp::ClockSync { node: id, at: Instant::now() + sync_delay });
        self.nodes.insert(id, (name.to_string(), tx, join));
        id
    }

    /// Delivers an [`Incoming`] straight to a node (harness stimulus).
    pub fn inject(&self, node: NodeId, incoming: Incoming) {
        if let Some((_, tx, _)) = self.nodes.get(&node) {
            let _ = tx.send(NodeMsg::Event(incoming));
        }
    }

    /// Stops every thread and returns the actors for inspection.
    pub fn shutdown(mut self) -> HashMap<NodeId, Box<dyn Actor>> {
        let _ = self.wire_tx.send(WireOp::Stop);
        if let Some(j) = self.wire_join.take() {
            let _ = j.join();
        }
        let mut out = HashMap::new();
        for (id, (_name, tx, join)) in std::mem::take(&mut self.nodes) {
            let _ = tx.send(NodeMsg::Stop);
            if let Ok(actor) = join.join() {
                out.insert(id, actor);
            }
        }
        out
    }
}

impl Drop for ThreadedNet {
    fn drop(&mut self) {
        let _ = self.wire_tx.send(WireOp::Stop);
        if let Some(j) = self.wire_join.take() {
            let _ = j.join();
        }
        for (_, (_, tx, _)) in self.nodes.iter() {
            let _ = tx.send(NodeMsg::Stop);
        }
        for (_, (_, _, join)) in std::mem::take(&mut self.nodes) {
            let _ = join.join();
        }
    }
}

fn wire_thread(shared: Arc<Shared>, rx: Receiver<WireOp>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut heap: BinaryHeap<Due> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut streams = StreamBook::new();

    let push = |heap: &mut BinaryHeap<Due>, seq: &mut u64, at, node, incoming| {
        heap.push(Due { at, seq: *seq, node, incoming });
        *seq += 1;
    };

    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|d| d.at <= now) {
            let due = heap.pop().unwrap();
            if matches!(due.incoming, Incoming::ClockSynced) {
                if let Some(c) = shared.clocks.lock().get_mut(&due.node) {
                    c.mark_synced();
                }
            }
            let txs = shared.node_txs.lock();
            if let Some(tx) = txs.get(&due.node) {
                let _ = tx.send(NodeMsg::Event(due.incoming));
            }
        }
        let timeout = heap
            .peek()
            .map(|d| d.at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        let op = match rx.recv_timeout(timeout) {
            Ok(op) => op,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        match op {
            WireOp::Stop => return,
            WireOp::ClockSync { node, at } => {
                // The flag flip and the ClockSynced delivery both happen
                // when this entry pops from the heap.
                push(&mut heap, &mut seq, at, node, Incoming::ClockSynced);
            }
            WireOp::Datagram { from, to, bytes } => {
                let net = shared.network.lock();
                let fate = net.datagram_fate(from.node, to.node, &mut rng);
                let tx = net
                    .spec_between(from.node, to.node)
                    .map(|s| s.transmission_delay(bytes.len()))
                    .unwrap_or_default();
                drop(net);
                {
                    let mut st = shared.stats.lock();
                    st.datagrams_sent += 1;
                    match fate {
                        DatagramFate::Lost => st.datagrams_lost += 1,
                        DatagramFate::Unreachable => st.unreachable += 1,
                        DatagramFate::Deliver(_) => {
                            st.datagrams_delivered += 1;
                            st.bytes_delivered += bytes.len() as u64;
                        }
                    }
                }
                if let DatagramFate::Deliver(lat) = fate {
                    if let Ok(msg) = WireMsg::from_frame(bytes) {
                        *shared.stats.lock().by_kind.entry(msg.kind()).or_insert(0) += 1;
                        let at = Instant::now() + shared.scaled(lat + tx);
                        push(
                            &mut heap,
                            &mut seq,
                            at,
                            to.node,
                            Incoming::Datagram { from, to_port: to.port, msg },
                        );
                    }
                }
            }
            WireOp::Stream { from, to, bytes } => {
                let (lat, tx) = {
                    let net = shared.network.lock();
                    (
                        net.stream_latency(from.node, to.node, &mut rng),
                        net.spec_between(from.node, to.node)
                            .map(|s| s.transmission_delay(bytes.len()))
                            .unwrap_or_default(),
                    )
                };
                if let Some(lat) = lat.map(|l| l + tx) {
                    let frame_len = bytes.len();
                    if let Ok(msg) = WireMsg::from_frame(bytes) {
                        {
                            let mut st = shared.stats.lock();
                            st.stream_delivered += 1;
                            st.bytes_delivered += frame_len as u64;
                            *st.by_kind.entry(msg.kind()).or_insert(0) += 1;
                        }
                        let now_sim = shared.now();
                        let arrival =
                            streams.delivery_time(from, to, now_sim, shared.scaled(lat));
                        let delay = arrival - now_sim;
                        let at = Instant::now() + delay;
                        push(
                            &mut heap,
                            &mut seq,
                            at,
                            to.node,
                            Incoming::Stream { from, to_port: to.port, msg },
                        );
                    }
                }
            }
            WireOp::Multicast { from, group, to_port, bytes } => {
                let recipients = {
                    let net = shared.network.lock();
                    net.multicast_recipients(group, from.node)
                };
                // Decode once for the whole fan-out; each recipient gets
                // a refcount clone of the same WireMsg.
                let Ok(msg) = WireMsg::from_frame(bytes) else {
                    continue;
                };
                for r in recipients {
                    let fate = shared.network.lock().datagram_fate(from.node, r, &mut rng);
                    if let DatagramFate::Deliver(lat) = fate {
                        let at = Instant::now() + shared.scaled(lat);
                        push(
                            &mut heap,
                            &mut seq,
                            at,
                            r,
                            Incoming::Datagram { from, to_port, msg: msg.clone() },
                        );
                    }
                }
            }
        }
    }
}

struct TimerEntry {
    at: Instant,
    token: u64,
    epoch: u64,
}
impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.token == other.token && self.epoch == other.epoch
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.token.cmp(&self.token))
    }
}

#[derive(Default)]
struct TimerSet {
    heap: BinaryHeap<TimerEntry>,
    epochs: HashMap<u64, u64>,
}

impl TimerSet {
    fn set(&mut self, at: Instant, token: u64) {
        let e = self.epochs.entry(token).or_insert(0);
        *e += 1;
        self.heap.push(TimerEntry { at, token, epoch: *e });
    }

    fn cancel(&mut self, token: u64) {
        if let Some(e) = self.epochs.get_mut(&token) {
            *e += 1;
        }
    }

    fn next_due(&mut self) -> Option<Instant> {
        // Drop stale entries from the front first.
        while let Some(top) = self.heap.peek() {
            if self.epochs.get(&top.token) == Some(&top.epoch) {
                return Some(top.at);
            }
            self.heap.pop();
        }
        None
    }

    fn pop_due(&mut self, now: Instant) -> Vec<u64> {
        let mut fired = Vec::new();
        while let Some(top) = self.heap.peek() {
            if top.at > now {
                break;
            }
            let entry = self.heap.pop().unwrap();
            if self.epochs.get(&entry.token) == Some(&entry.epoch) {
                fired.push(entry.token);
            }
        }
        fired
    }
}

struct ThreadCtx<'a> {
    node: NodeId,
    realm: RealmId,
    shared: &'a Arc<Shared>,
    wire_tx: &'a Sender<WireOp>,
    rng: &'a mut StdRng,
    timers: &'a mut TimerSet,
}

impl Context for ThreadCtx<'_> {
    fn me(&self) -> NodeId {
        self.node
    }

    fn realm(&self) -> RealmId {
        self.realm
    }

    fn now(&self) -> SimTime {
        self.shared.now()
    }

    fn utc_micros(&self) -> u64 {
        let now = self.shared.now();
        self.shared.clocks.lock().get(&self.node).map_or(0, |c| c.utc_micros(now))
    }

    fn clock_synced(&self) -> bool {
        self.shared.clocks.lock().get(&self.node).is_some_and(|c| c.synced)
    }

    fn raw_local_micros(&self) -> u64 {
        let now = self.shared.now();
        self.shared
            .clocks
            .lock()
            .get(&self.node)
            .map_or(crate::time::true_utc_micros(now), |c| c.raw_local_micros(now))
    }

    fn set_clock_estimate_ns(&mut self, est_offset_ns: i64) {
        if let Some(c) = self.shared.clocks.lock().get_mut(&self.node) {
            c.set_estimate_ns(est_offset_ns);
        }
    }

    fn send_udp(&mut self, from_port: Port, to: Endpoint, msg: &Message) {
        let _ = self.wire_tx.send(WireOp::Datagram {
            from: Endpoint::new(self.node, from_port),
            to,
            bytes: frame_message(msg, DEFAULT_TTL, 0),
        });
    }

    fn send_stream(&mut self, from_port: Port, to: Endpoint, msg: &Message) {
        let _ = self.wire_tx.send(WireOp::Stream {
            from: Endpoint::new(self.node, from_port),
            to,
            bytes: frame_message(msg, DEFAULT_TTL, 0),
        });
    }

    fn send_udp_wire(&mut self, from_port: Port, to: Endpoint, msg: &WireMsg) {
        let _ = self.wire_tx.send(WireOp::Datagram {
            from: Endpoint::new(self.node, from_port),
            to,
            bytes: msg.frame().clone(),
        });
    }

    fn send_stream_wire(&mut self, from_port: Port, to: Endpoint, msg: &WireMsg) {
        let _ = self.wire_tx.send(WireOp::Stream {
            from: Endpoint::new(self.node, from_port),
            to,
            bytes: msg.frame().clone(),
        });
    }

    fn send_multicast(&mut self, from_port: Port, group: GroupId, to_port: Port, msg: &Message) {
        let _ = self.wire_tx.send(WireOp::Multicast {
            from: Endpoint::new(self.node, from_port),
            group,
            to_port,
            bytes: frame_message(msg, DEFAULT_TTL, 0),
        });
    }

    fn join_group(&mut self, group: GroupId) {
        self.shared.network.lock().join_group(group, self.node);
    }

    fn leave_group(&mut self, group: GroupId) {
        self.shared.network.lock().leave_group(group, self.node);
    }

    fn set_timer(&mut self, delay: Duration, token: u64) {
        self.timers.set(Instant::now() + delay, token);
    }

    fn cancel_timer(&mut self, token: u64) {
        self.timers.cancel(token);
    }

    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }
}

fn node_thread(
    id: NodeId,
    realm: RealmId,
    shared: Arc<Shared>,
    wire_tx: Sender<WireOp>,
    rx: Receiver<NodeMsg>,
    mut actor: Box<dyn Actor>,
    seed: u64,
) -> Box<dyn Actor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut timers = TimerSet::default();
    {
        let mut ctx = ThreadCtx {
            node: id,
            realm,
            shared: &shared,
            wire_tx: &wire_tx,
            rng: &mut rng,
            timers: &mut timers,
        };
        actor.on_start(&mut ctx);
    }
    loop {
        // Fire any due timers first.
        let fired = timers.pop_due(Instant::now());
        for token in fired {
            let mut ctx = ThreadCtx {
                node: id,
                realm,
                shared: &shared,
                wire_tx: &wire_tx,
                rng: &mut rng,
                timers: &mut timers,
            };
            actor.on_incoming(Incoming::Timer { token }, &mut ctx);
        }
        let timeout = timers
            .next_due()
            .map(|at| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(NodeMsg::Event(incoming)) => {
                let mut ctx = ThreadCtx {
                    node: id,
                    realm,
                    shared: &shared,
                    wire_tx: &wire_tx,
                    rng: &mut rng,
                    timers: &mut timers,
                };
                actor.on_incoming(incoming, &mut ctx);
            }
            Ok(NodeMsg::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
    actor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_actor_any;
    use crate::link::LinkSpec;
    use nb_wire::addr::well_known;

    #[derive(Default)]
    struct Echo {
        pings: u32,
    }
    impl Actor for Echo {
        fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
            if let Incoming::Datagram { to_port, msg, .. } = event {
                if let Message::Ping { nonce, sent_at, reply_to } = *msg.message() {
                    self.pings += 1;
                    ctx.send_udp(
                        to_port,
                        reply_to,
                        &Message::Pong { nonce, echoed_sent_at: sent_at, responder: ctx.me() },
                    );
                }
            }
        }
        impl_actor_any!();
    }

    struct Pinger {
        target: NodeId,
        rtts_us: Vec<u64>,
        sent: HashMap<u64, SimTime>,
    }
    impl Actor for Pinger {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            for nonce in 0..3u64 {
                self.sent.insert(nonce, ctx.now());
                ctx.send_udp(
                    well_known::PING,
                    Endpoint::new(self.target, well_known::PING),
                    &Message::Ping {
                        nonce,
                        sent_at: ctx.now().as_micros(),
                        reply_to: Endpoint::new(ctx.me(), well_known::PING),
                    },
                );
            }
        }
        fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
            if let Incoming::Datagram { msg, .. } = event {
                if let Message::Pong { nonce, .. } = msg.message() {
                    let rtt = ctx.now() - self.sent[nonce];
                    self.rtts_us.push(rtt.as_micros() as u64);
                }
            }
        }
        impl_actor_any!();
    }

    #[test]
    fn threaded_ping_pong_observes_modelled_latency() {
        let mut net = ThreadedNet::new(7);
        net.configure_network(|n| {
            n.inter_realm_spec = LinkSpec::wan(Duration::from_millis(10)).with_loss(0.0);
        });
        let echo = net.add_node("echo", RealmId(0), ClockProfile::perfect(), Box::new(Echo::default()));
        let pinger = net.add_node(
            "pinger",
            RealmId(1),
            ClockProfile::perfect(),
            Box::new(Pinger { target: echo, rtts_us: Vec::new(), sent: HashMap::new() }),
        );
        std::thread::sleep(Duration::from_millis(400));
        let actors = net.shutdown();
        let p = actors[&pinger].as_any().downcast_ref::<Pinger>().unwrap();
        assert_eq!(p.rtts_us.len(), 3, "all pongs received");
        for rtt in &p.rtts_us {
            assert!(*rtt >= 20_000, "rtt {rtt}µs below 2× one-way");
            assert!(*rtt < 100_000, "rtt {rtt}µs absurdly high");
        }
        let e = actors[&echo].as_any().downcast_ref::<Echo>().unwrap();
        assert_eq!(e.pings, 3);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct T {
            fired: Vec<u64>,
        }
        impl Actor for T {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                ctx.set_timer(Duration::from_millis(30), 1);
                ctx.set_timer(Duration::from_millis(60), 2);
                ctx.cancel_timer(2);
                ctx.set_timer(Duration::from_millis(90), 3);
            }
            fn on_incoming(&mut self, event: Incoming, _ctx: &mut dyn Context) {
                if let Incoming::Timer { token } = event {
                    self.fired.push(token);
                }
            }
            impl_actor_any!();
        }
        let mut net = ThreadedNet::new(1);
        let n = net.add_node("t", RealmId(0), ClockProfile::perfect(), Box::new(T { fired: vec![] }));
        std::thread::sleep(Duration::from_millis(250));
        let actors = net.shutdown();
        let t = actors[&n].as_any().downcast_ref::<T>().unwrap();
        assert_eq!(t.fired, vec![1, 3]);
    }

    #[test]
    fn multicast_reaches_same_realm_only() {
        #[derive(Default)]
        struct Listener {
            got: u32,
        }
        impl Actor for Listener {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                ctx.join_group(GroupId(5));
            }
            fn on_incoming(&mut self, event: Incoming, _ctx: &mut dyn Context) {
                if let Incoming::Datagram { msg, .. } = &event {
                    if matches!(msg.message(), Message::Heartbeat { .. }) {
                        self.got += 1;
                    }
                }
            }
            impl_actor_any!();
        }
        struct Caster;
        impl Actor for Caster {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                // Give listeners a beat to join, then cast.
                ctx.set_timer(Duration::from_millis(50), 1);
            }
            fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
                if matches!(event, Incoming::Timer { token: 1 }) {
                    let hb = Message::Heartbeat { from: ctx.me(), seq: 0 };
                    ctx.send_multicast(Port(1), GroupId(5), Port(1), &hb);
                }
            }
            impl_actor_any!();
        }
        let mut net = ThreadedNet::new(3);
        net.configure_network(|n| {
            n.intra_realm_spec = LinkSpec::lan().with_loss(0.0);
        });
        let same = net.add_node("same", RealmId(0), ClockProfile::perfect(), Box::new(Listener::default()));
        let other = net.add_node("other", RealmId(1), ClockProfile::perfect(), Box::new(Listener::default()));
        net.add_node("caster", RealmId(0), ClockProfile::perfect(), Box::new(Caster));
        std::thread::sleep(Duration::from_millis(300));
        let actors = net.shutdown();
        assert_eq!(actors[&same].as_any().downcast_ref::<Listener>().unwrap().got, 1);
        assert_eq!(actors[&other].as_any().downcast_ref::<Listener>().unwrap().got, 0);
    }

    #[test]
    fn clock_sync_event_arrives() {
        struct W {
            synced: bool,
        }
        impl Actor for W {
            fn on_incoming(&mut self, event: Incoming, _ctx: &mut dyn Context) {
                if matches!(event, Incoming::ClockSynced) {
                    self.synced = true;
                }
            }
            impl_actor_any!();
        }
        let profile = ClockProfile {
            max_true_offset: Duration::from_millis(100),
            min_residual: Duration::from_millis(1),
            max_residual: Duration::from_millis(5),
            min_sync_delay: Duration::from_millis(50),
            max_sync_delay: Duration::from_millis(80),
        };
        let mut net = ThreadedNet::new(4);
        let n = net.add_node("w", RealmId(0), profile, Box::new(W { synced: false }));
        std::thread::sleep(Duration::from_millis(300));
        let actors = net.shutdown();
        assert!(actors[&n].as_any().downcast_ref::<W>().unwrap().synced);
    }
}

//! Seeded WAN topology generators for the scale suite.
//!
//! The paper evaluates discovery on a five-site testbed; ROADMAP item 1
//! pushes *population*. These generators produce broker-overlay
//! topologies at 1e2–1e3 brokers that stress the same structural
//! regimes the paper's figures probe, as pure functions of
//! `(kind, brokers, regions, seed)`:
//!
//! * [`TopologyKind::Star`] / [`TopologyKind::Linear`] — the paper's
//!   connected topologies as degenerate cases (one hub; a chain),
//! * [`TopologyKind::RandomGeometric`] — brokers at seeded fixed-point
//!   grid coordinates, linked when within a radius chosen for ~6
//!   expected neighbours; disconnected components are stitched
//!   deterministically so discovery floods always have a path,
//! * [`TopologyKind::HierarchicalIsp`] — contiguous regions, one
//!   gateway each, a chorded backbone ring between gateways, and
//!   region-local broker meshes — the "ISP-like" shape where most links
//!   are short and a few are long.
//!
//! Everything is integer arithmetic (fixed-point coordinates, µs
//! latencies) drawn from a `StdRng` seeded by the spec, so a topology
//! is byte-identical across hosts and across worker counts — the
//! property the scale campaign's digest gate depends on. Generators
//! emit an explicit *edge list* (installed via
//! [`NetworkModel::set_link`], never all-pairs), which is what keeps
//! [`crate::shard::ShardPlan`]'s sparse planner and the sharded
//! engine's lookahead derivation O(E) at 1e5-node populations.

use std::time::Duration;

use nb_wire::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::link::{LinkSpec, NetworkModel};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The generator family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Every broker links to broker 0 (the paper's star).
    Star,
    /// A chain `0 - 1 - … - n-1` (the paper's linear topology).
    Linear,
    /// Random geometric graph on a fixed-point grid.
    RandomGeometric,
    /// Regions with gateways on a chorded backbone ring.
    HierarchicalIsp,
}

impl TopologyKind {
    fn tag(self) -> u64 {
        match self {
            TopologyKind::Star => 1,
            TopologyKind::Linear => 2,
            TopologyKind::RandomGeometric => 3,
            TopologyKind::HierarchicalIsp => 4,
        }
    }

    /// Stable lowercase name (JSON reports, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Star => "star",
            TopologyKind::Linear => "linear",
            TopologyKind::RandomGeometric => "random-geometric",
            TopologyKind::HierarchicalIsp => "hierarchical-isp",
        }
    }
}

/// What to generate. `generate` is a pure function of this value.
#[derive(Debug, Clone, Copy)]
pub struct TopologySpec {
    /// Generator family.
    pub kind: TopologyKind,
    /// Broker count (graph vertices).
    pub brokers: usize,
    /// Region count (realms); clamped to `1..=brokers`. Star and linear
    /// collapse to one region.
    pub regions: usize,
    /// RNG root seed for coordinates, chords and latency draws.
    pub seed: u64,
}

impl TopologySpec {
    /// A spec with `regions` defaulted to ~one per 50 brokers.
    pub fn new(kind: TopologyKind, brokers: usize, seed: u64) -> TopologySpec {
        TopologySpec { kind, brokers, regions: brokers.div_ceil(50), seed }
    }

    /// Generates the topology (deterministic; same spec, same graph).
    pub fn generate(&self) -> WanTopology {
        let n = self.brokers.max(1);
        let regions = match self.kind {
            TopologyKind::Star | TopologyKind::Linear => 1,
            _ => self.regions.clamp(1, n),
        };
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.kind.tag().rotate_left(32));
        // Contiguous region blocks: broker i -> region i·R/n, so realm
        // chains in the sparse shard planner see each region whole.
        let region_of: Vec<usize> = (0..n).map(|i| i * regions / n).collect();
        let mut edges: Vec<(usize, usize, Duration)> = Vec::new();
        match self.kind {
            TopologyKind::Star => {
                for i in 1..n {
                    edges.push((0, i, us(rng.gen_range(10_000..=50_000))));
                }
            }
            TopologyKind::Linear => {
                for i in 1..n {
                    edges.push((i - 1, i, us(rng.gen_range(10_000..=50_000))));
                }
            }
            TopologyKind::RandomGeometric => {
                generate_geometric(n, &region_of, &mut rng, &mut edges);
            }
            TopologyKind::HierarchicalIsp => {
                generate_isp(n, regions, &region_of, &mut rng, &mut edges);
            }
        }
        stitch_components(n, &mut edges);
        WanTopology { kind: self.kind, regions, region_of, edges }
    }
}

fn us(v: u64) -> Duration {
    Duration::from_micros(v)
}

/// Integer square root (largest `r` with `r·r <= v`); avoids floating
/// point in the deterministic zone.
fn isqrt(v: u64) -> u64 {
    if v < 2 {
        return v;
    }
    let mut lo = 1u64;
    let mut hi = 1u64 << (v.ilog2() / 2 + 1);
    while lo < hi {
        let mid = (lo + hi + 1) / 2;
        if mid.checked_mul(mid).is_some_and(|sq| sq <= v) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

const GRID: i64 = 1 << 16;

fn generate_geometric(
    n: usize,
    region_of: &[usize],
    rng: &mut StdRng,
    edges: &mut Vec<(usize, usize, Duration)>,
) {
    // Fixed-point coordinates on a GRID×GRID plane; radius² chosen for
    // ~6 expected neighbours (n·π·r²/A² ≈ 6 at r² = 2A²/n).
    let coords: Vec<(i64, i64)> =
        (0..n).map(|_| (rng.gen_range(0..GRID), rng.gen_range(0..GRID))).collect();
    let r2: i64 = (GRID * GRID / n.max(1) as i64) * 2;
    for i in 0..n {
        for j in (i + 1)..n {
            let (dx, dy) = (coords[i].0 - coords[j].0, coords[i].1 - coords[j].1);
            let d2 = dx * dx + dy * dy;
            if d2 > r2 {
                continue;
            }
            // Latency ∝ distance: the full grid diagonal maps to ~60 ms
            // one-way, floor 200 µs.
            let dist = isqrt(d2 as u64);
            let lat = 200 + dist * 60_000 / (GRID as u64 * 3 / 2);
            edges.push((i, j, us(lat)));
        }
    }
    // Same-region neighbours tend to be near each other already; the
    // region assignment is positional only (realms drive defaults, not
    // generated edges), so nothing more to do here.
    let _ = region_of;
}

fn generate_isp(
    n: usize,
    regions: usize,
    region_of: &[usize],
    rng: &mut StdRng,
    edges: &mut Vec<(usize, usize, Duration)>,
) {
    // Gateway of region r: its first (lowest-index) broker.
    let mut gateway = vec![usize::MAX; regions];
    for i in 0..n {
        let r = region_of[i];
        if gateway[r] == usize::MAX {
            gateway[r] = i;
        }
    }
    // Backbone: ring over gateways plus ~R/2 random chords, 20–80 ms.
    for r in 0..regions {
        let next = (r + 1) % regions;
        if regions > 1 && gateway[r] != gateway[next] && (r < next || regions > 2) {
            edges.push((
                gateway[r].min(gateway[next]),
                gateway[r].max(gateway[next]),
                us(rng.gen_range(20_000..=80_000)),
            ));
        }
    }
    for _ in 0..regions / 2 {
        let a = rng.gen_range(0..regions);
        let b = rng.gen_range(0..regions);
        if gateway[a] != gateway[b] {
            edges.push((
                gateway[a].min(gateway[b]),
                gateway[a].max(gateway[b]),
                us(rng.gen_range(20_000..=80_000)),
            ));
        }
    }
    // Access tier: every non-gateway broker to its gateway (1–5 ms),
    // plus one chord to a seeded same-region peer for local meshiness.
    for i in 0..n {
        let gw = gateway[region_of[i]];
        if i == gw {
            continue;
        }
        edges.push((gw.min(i), gw.max(i), us(rng.gen_range(1_000..=5_000))));
        let peer = rng.gen_range(0..n);
        if peer != i && region_of[peer] == region_of[i] {
            edges.push((peer.min(i), peer.max(i), us(rng.gen_range(1_000..=5_000))));
        }
    }
}

/// Connects a possibly-fragmented edge set: union-find the components,
/// then chain their (sorted) lowest-id members with long-haul links.
/// Deterministic — component representatives are minima, the chain walks
/// them in ascending order.
fn stitch_components(n: usize, edges: &mut Vec<(usize, usize, Duration)>) {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(a, b, _) in edges.iter() {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            let (keep, gone) = (ra.min(rb), ra.max(rb));
            parent[gone] = keep;
        }
    }
    let mut roots: Vec<usize> = Vec::new();
    for v in 0..n {
        if find(&mut parent, v) == v {
            roots.push(v);
        }
    }
    for pair in roots.windows(2) {
        edges.push((pair[0], pair[1], us(40_000)));
    }
}

/// A generated broker overlay: region (realm) assignment plus an
/// explicit inter-broker edge list.
#[derive(Debug, Clone)]
pub struct WanTopology {
    /// Which generator produced this.
    pub kind: TopologyKind,
    /// Number of regions (realms).
    pub regions: usize,
    /// `region_of[broker_index] = region`.
    pub region_of: Vec<usize>,
    /// `(low_index, high_index, one_way_latency)` links.
    pub edges: Vec<(usize, usize, Duration)>,
}

impl WanTopology {
    /// Broker count.
    pub fn brokers(&self) -> usize {
        self.region_of.len()
    }

    /// Number of connected components over the generated edges (1 means
    /// every discovery flood has a path).
    pub fn components(&self) -> usize {
        let n = self.brokers();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut count = n;
        for &(a, b, _) in &self.edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                let (keep, gone) = (ra.min(rb), ra.max(rb));
                parent[gone] = keep;
                count -= 1;
            }
        }
        count
    }

    /// Installs the edge list as explicit loss-free link overrides,
    /// mapping broker index `i` to `ids[i]`. O(E) — never all pairs.
    pub fn install(&self, net: &mut NetworkModel, ids: &[NodeId]) {
        for &(a, b, lat) in &self.edges {
            net.set_link(ids[a], ids[b], LinkSpec::wan(lat).with_loss(0.0));
        }
    }

    /// FNV-1a-64 over the region assignment and edge list — the
    /// identity the generator proptests pin across reruns.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(FNV_PRIME);
        };
        mix(self.kind.tag());
        mix(self.regions as u64);
        for &r in &self.region_of {
            mix(r as u64);
        }
        for &(a, b, lat) in &self.edges {
            mix(a as u64);
            mix(b as u64);
            mix(lat.as_micros() as u64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_and_linear_are_degenerate_and_connected() {
        for kind in [TopologyKind::Star, TopologyKind::Linear] {
            let t = TopologySpec::new(kind, 12, 7).generate();
            assert_eq!(t.brokers(), 12);
            assert_eq!(t.regions, 1);
            assert_eq!(t.edges.len(), 11);
            assert_eq!(t.components(), 1);
        }
    }

    #[test]
    fn generators_are_pure_functions_of_the_spec() {
        for kind in [TopologyKind::RandomGeometric, TopologyKind::HierarchicalIsp] {
            let a = TopologySpec::new(kind, 120, 42).generate();
            let b = TopologySpec::new(kind, 120, 42).generate();
            let c = TopologySpec::new(kind, 120, 43).generate();
            assert_eq!(a.digest(), b.digest(), "{} not deterministic", kind.name());
            assert_ne!(a.digest(), c.digest(), "{} ignores its seed", kind.name());
        }
    }

    #[test]
    fn install_registers_only_explicit_edges() {
        let t = TopologySpec::new(TopologyKind::HierarchicalIsp, 60, 9).generate();
        let mut net = NetworkModel::new();
        let ids: Vec<NodeId> = (0..60).map(|i| NodeId(i as u32)).collect();
        t.install(&mut net, &ids);
        assert_eq!(net.link_overrides().count(), {
            // set_link normalises pairs, so duplicates collapse.
            let mut keys: Vec<(usize, usize)> =
                t.edges.iter().map(|&(a, b, _)| (a, b)).collect();
            keys.sort_unstable();
            keys.dedup();
            keys.len()
        });
    }
}

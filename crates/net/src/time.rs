//! Virtual time.
//!
//! [`SimTime`] is a nanosecond count since the simulation epoch. The
//! discrete-event engine advances it; the threaded runtime derives it
//! from a wall-clock anchor. Durations are plain [`std::time::Duration`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant in simulated time (nanoseconds since the simulation epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

/// The UTC instant corresponding to [`SimTime::ZERO`], in nanoseconds
/// since the Unix epoch (2005-06-29, roughly when the paper's experiments
/// ran). Node clocks read `sim time + UTC_EPOCH_NS ± skew`, so clock
/// arithmetic never saturates near the simulation start.
pub const UTC_EPOCH_NS: u64 = 1_120_000_000_000_000_000;

/// The true UTC time (µs since the Unix epoch) at simulated instant `now`.
pub fn true_utc_micros(now: SimTime) -> u64 {
    (UTC_EPOCH_NS + now.as_nanos()) / 1_000
}

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Applies a signed offset (clock skew), saturating at the epoch.
    pub fn offset_by(self, offset_ns: i64) -> SimTime {
        if offset_ns >= 0 {
            SimTime(self.0.saturating_add(offset_ns as u64))
        } else {
            SimTime(self.0.saturating_sub(offset_ns.unsigned_abs()))
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos() as u64))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_agree() {
        let t = SimTime::from_millis(1500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.as_millis(), 1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_micros(3), SimTime::from_nanos(3000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!(t - SimTime::from_millis(10), Duration::from_millis(5));
        // saturating subtraction
        assert_eq!(SimTime::ZERO - SimTime::from_millis(1), Duration::ZERO);
    }

    #[test]
    fn signed_offsets() {
        let t = SimTime::from_millis(100);
        assert_eq!(t.offset_by(1_000_000).as_millis(), 101);
        assert_eq!(t.offset_by(-1_000_000).as_millis(), 99);
        assert_eq!(SimTime::from_nanos(5).offset_by(-10), SimTime::ZERO);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::from_millis(1250).to_string(), "1.250000s");
    }
}

//! Link models: latency, jitter, loss, realm-scoped multicast membership
//! and TCP-like stream bookkeeping.
//!
//! The model is deliberately simple and explicit — discovery time is
//! dominated by propagation latency, datagram loss and topology, so those
//! are what we model. Loss applies to datagrams only; streams are
//! reliable but pay connection setup (one RTT on first use) and preserve
//! per-connection ordering.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use nb_wire::{Endpoint, GroupId, NodeId, RealmId};
use rand::Rng;

use crate::time::SimTime;

/// One direction of a network path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Base one-way latency.
    pub latency: Duration,
    /// Uniform jitter: each packet adds `U(0, jitter)`.
    pub jitter: Duration,
    /// Probability an individual datagram is lost.
    pub loss: f64,
    /// Link bandwidth in bytes/second (`None` = unlimited). Messages pay
    /// a serialisation delay of `len / bandwidth`, and back-to-back sends
    /// from the same node to the same peer queue behind one another.
    pub bandwidth: Option<u64>,
}

impl LinkSpec {
    /// Loopback within a single machine.
    pub fn local() -> LinkSpec {
        LinkSpec {
            latency: Duration::from_micros(20),
            jitter: Duration::from_micros(10),
            loss: 0.0,
            bandwidth: None,
        }
    }

    /// A LAN hop within one realm (100 Mbit/s, 2005-era switched LAN).
    pub fn lan() -> LinkSpec {
        LinkSpec {
            latency: Duration::from_micros(300),
            jitter: Duration::from_micros(150),
            loss: 0.0005,
            bandwidth: Some(12_500_000),
        }
    }

    /// A WAN path with the given one-way latency. Jitter scales to 10% of
    /// latency; loss grows with distance (~0.1% per 25 ms), modelling the
    /// paper's observation that responses crossing more router hops are
    /// likelier to be lost. Bandwidth defaults to 10 Mbit/s (a 2005-era
    /// academic WAN path's per-flow share).
    pub fn wan(one_way: Duration) -> LinkSpec {
        let ms = one_way.as_secs_f64() * 1e3;
        LinkSpec {
            latency: one_way,
            jitter: one_way.mul_f64(0.10),
            loss: (0.001 * ms / 25.0).min(0.05),
            bandwidth: Some(1_250_000),
        }
    }

    /// Replaces the bandwidth.
    pub fn with_bandwidth(mut self, bytes_per_sec: Option<u64>) -> LinkSpec {
        self.bandwidth = bytes_per_sec;
        self
    }

    /// Serialisation delay for a message of `len` bytes.
    pub fn transmission_delay(&self, len: usize) -> Duration {
        match self.bandwidth {
            None => Duration::ZERO,
            Some(bw) => Duration::from_nanos(
                ((len as u128).saturating_mul(1_000_000_000) / u128::from(bw.max(1))) as u64,
            ),
        }
    }

    /// Replaces the loss probability.
    pub fn with_loss(mut self, loss: f64) -> LinkSpec {
        self.loss = loss;
        self
    }

    /// Replaces the jitter.
    pub fn with_jitter(mut self, jitter: Duration) -> LinkSpec {
        self.jitter = jitter;
        self
    }

    /// Samples a one-way latency for one packet.
    pub fn sample_latency<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let j = self.jitter.as_nanos() as u64;
        if j == 0 {
            self.latency
        } else {
            self.latency + Duration::from_nanos(rng.gen_range(0..=j))
        }
    }

    /// Samples whether a datagram is lost.
    pub fn sample_loss<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.loss > 0.0 && rng.gen::<f64>() < self.loss
    }
}

/// The outcome of sending one datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatagramFate {
    /// Delivered after the given one-way delay.
    Deliver(Duration),
    /// Lost in transit.
    Lost,
    /// No path (partition or unknown node).
    Unreachable,
}

/// The static network model: who is where, and what the paths look like.
///
/// All interior collections are ordered (`BTreeMap`/`BTreeSet`) so that
/// every sweep or fan-out over them is deterministic regardless of
/// insertion history (lint rule D002).
#[derive(Debug, Clone)]
pub struct NetworkModel {
    realms: BTreeMap<NodeId, RealmId>,
    overrides: BTreeMap<(NodeId, NodeId), LinkSpec>,
    partitions: BTreeSet<(NodeId, NodeId)>,
    /// Directed severed paths `(from, to)` — asymmetric partitions where
    /// traffic one way is black-holed while replies still flow.
    directed_partitions: BTreeSet<(NodeId, NodeId)>,
    groups: BTreeMap<GroupId, BTreeSet<NodeId>>,
    /// Path used within a node (loopback).
    pub local_spec: LinkSpec,
    /// Default path between nodes sharing a realm.
    pub intra_realm_spec: LinkSpec,
    /// Default path between realms (overridden per pair for WAN scenarios).
    pub inter_realm_spec: LinkSpec,
    /// Whether multicast delivery works at all. Networks without
    /// multicast routing (the common WAN case in the paper) set this
    /// false: sends succeed but reach nobody.
    pub multicast_enabled: bool,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::new()
    }
}

impl NetworkModel {
    /// A model with loopback/LAN/WAN defaults and no nodes.
    pub fn new() -> NetworkModel {
        NetworkModel {
            realms: BTreeMap::new(),
            overrides: BTreeMap::new(),
            partitions: BTreeSet::new(),
            directed_partitions: BTreeSet::new(),
            groups: BTreeMap::new(),
            local_spec: LinkSpec::local(),
            intra_realm_spec: LinkSpec::lan(),
            inter_realm_spec: LinkSpec::wan(Duration::from_millis(40)),
            multicast_enabled: true,
        }
    }

    /// Registers a node in a realm. Must be called before traffic flows.
    pub fn register_node(&mut self, node: NodeId, realm: RealmId) {
        self.realms.insert(node, realm);
    }

    /// The realm a node lives in, if registered.
    pub fn realm_of(&self, node: NodeId) -> Option<RealmId> {
        self.realms.get(&node).copied()
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Overrides the path between `a` and `b` (symmetric).
    pub fn set_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.overrides.insert(Self::key(a, b), spec);
    }

    /// Severs the path between `a` and `b` (fault injection).
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert(Self::key(a, b));
    }

    /// Restores a severed path.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&Self::key(a, b));
    }

    /// Whether `a`↔`b` is currently severed.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.contains(&Self::key(a, b))
    }

    /// Severs only the directed path `from -> to` (asymmetric fault:
    /// `to` can still send back to `from`).
    pub fn partition_one_way(&mut self, from: NodeId, to: NodeId) {
        self.directed_partitions.insert((from, to));
    }

    /// Restores the directed path `from -> to`.
    pub fn heal_one_way(&mut self, from: NodeId, to: NodeId) {
        self.directed_partitions.remove(&(from, to));
    }

    /// Whether traffic `from -> to` is blocked by any partition,
    /// symmetric or directed.
    pub fn path_blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.is_partitioned(from, to) || self.directed_partitions.contains(&(from, to))
    }

    /// The effective path spec for traffic `a -> b`, or `None` when
    /// unreachable (partitioned or unregistered).
    pub fn spec_between(&self, a: NodeId, b: NodeId) -> Option<LinkSpec> {
        if self.path_blocked(a, b) {
            return None;
        }
        if let Some(s) = self.overrides.get(&Self::key(a, b)) {
            return Some(*s);
        }
        if a == b {
            return Some(self.local_spec);
        }
        let (ra, rb) = (self.realm_of(a)?, self.realm_of(b)?);
        Some(if ra == rb { self.intra_realm_spec } else { self.inter_realm_spec })
    }

    /// Rolls the dice for one datagram from `a` to `b`.
    pub fn datagram_fate<R: Rng + ?Sized>(&self, a: NodeId, b: NodeId, rng: &mut R) -> DatagramFate {
        match self.spec_between(a, b) {
            None => DatagramFate::Unreachable,
            Some(spec) => {
                if spec.sample_loss(rng) {
                    DatagramFate::Lost
                } else {
                    DatagramFate::Deliver(spec.sample_latency(rng))
                }
            }
        }
    }

    /// Samples a one-way latency for a reliable stream message (no loss;
    /// retransmission cost is folded into jitter). Streams need both
    /// directions — ACKs must flow — so a directed partition either way
    /// stalls them.
    pub fn stream_latency<R: Rng + ?Sized>(
        &self,
        a: NodeId,
        b: NodeId,
        rng: &mut R,
    ) -> Option<Duration> {
        if self.directed_partitions.contains(&(b, a)) {
            return None;
        }
        self.spec_between(a, b).map(|spec| spec.sample_latency(rng))
    }

    /// Adds `node` to `group`.
    pub fn join_group(&mut self, group: GroupId, node: NodeId) {
        self.groups.entry(group).or_default().insert(node);
    }

    /// Removes `node` from `group`.
    pub fn leave_group(&mut self, group: GroupId, node: NodeId) {
        if let Some(members) = self.groups.get_mut(&group) {
            members.remove(&node);
        }
    }

    /// Scales the loss probability of every path (defaults and per-pair
    /// overrides) by `factor`, clamping at 1.0. Used by loss-sensitivity
    /// ablations.
    pub fn scale_loss(&mut self, factor: f64) {
        let scale = |spec: &mut LinkSpec| spec.loss = (spec.loss * factor).clamp(0.0, 1.0);
        scale(&mut self.local_spec);
        scale(&mut self.intra_realm_spec);
        scale(&mut self.inter_realm_spec);
        for spec in self.overrides.values_mut() {
            scale(spec);
        }
    }

    /// The smallest base latency any message between two *distinct*
    /// nodes can experience: the minimum over the intra-realm and
    /// inter-realm defaults and every distinct-pair override. This is
    /// the conservative lookahead window of the sharded engine
    /// ([`crate::shard::ShardedSim`]): no event executed at time `t` can
    /// schedule a cross-node delivery earlier than `t + min_latency`
    /// (jitter, bandwidth serialisation and stream setup only add
    /// delay). The loopback spec is deliberately excluded — self-sends
    /// never cross a shard boundary.
    pub fn min_cross_node_latency(&self) -> Duration {
        let mut min = self.intra_realm_spec.latency.min(self.inter_realm_spec.latency);
        for ((a, b), spec) in &self.overrides {
            if a != b && spec.latency < min {
                min = spec.latency;
            }
        }
        min
    }

    /// Explicit per-pair link overrides, ascending by normalised
    /// `(low, high)` key. Sparse-topology consumers — the shard planner
    /// above ~2k nodes, topology generators — walk this instead of
    /// probing all O(n²) pairs through [`NetworkModel::spec_between`].
    pub fn link_overrides(&self) -> impl Iterator<Item = (NodeId, NodeId, &LinkSpec)> + '_ {
        self.overrides.iter().map(|(&(a, b), s)| (a, b, s))
    }

    /// Registered nodes and their realms, ascending by node id.
    pub fn registered_nodes(&self) -> impl Iterator<Item = (NodeId, RealmId)> + '_ {
        self.realms.iter().map(|(&n, &r)| (n, r))
    }

    /// Multicast recipients for a sender: members of `group` in the
    /// sender's realm, excluding the sender itself. Multicast never
    /// crosses realms.
    pub fn multicast_recipients(&self, group: GroupId, sender: NodeId) -> Vec<NodeId> {
        if !self.multicast_enabled {
            return Vec::new();
        }
        let Some(sender_realm) = self.realm_of(sender) else {
            return Vec::new();
        };
        let Some(members) = self.groups.get(&group) else {
            return Vec::new();
        };
        // `members` is a BTreeSet, so iteration is already ascending:
        // the fan-out order is deterministic without an explicit sort.
        members
            .iter()
            .copied()
            .filter(|&n| n != sender && self.realm_of(n) == Some(sender_realm))
            .collect()
    }
}

/// Per directed node pair, the instant the sender's wire is free: a
/// message of `len` bytes occupies the wire for `transmission_delay(len)`
/// starting no earlier than the previous message finished serialising.
#[derive(Debug, Default, Clone)]
pub struct WireBook {
    free_at: BTreeMap<(NodeId, NodeId), SimTime>,
}

impl WireBook {
    /// An idle wire book.
    pub fn new() -> WireBook {
        WireBook::default()
    }

    /// Computes when a `len`-byte message sent at `now` finishes
    /// serialising onto the wire, updating the book.
    pub fn serialize(
        &mut self,
        from: NodeId,
        to: NodeId,
        now: SimTime,
        len: usize,
        spec: &LinkSpec,
    ) -> SimTime {
        let tx = spec.transmission_delay(len);
        let entry = self.free_at.entry((from, to)).or_insert(SimTime::ZERO);
        let start = if *entry > now { *entry } else { now };
        let done = start + tx;
        *entry = done;
        done
    }

    /// Drops queueing state involving `node` (crash/restart).
    pub fn reset_node(&mut self, node: NodeId) {
        self.free_at.retain(|(a, b), _| *a != node && *b != node);
    }
}

/// Dynamic per-runtime stream (TCP) state: which connections are
/// established and the ordering clamp per direction.
#[derive(Debug, Default, Clone)]
pub struct StreamBook {
    established: BTreeSet<(Endpoint, Endpoint)>,
    last_arrival: BTreeMap<(Endpoint, Endpoint), SimTime>,
}

impl StreamBook {
    /// A book with no connections.
    pub fn new() -> StreamBook {
        StreamBook::default()
    }

    /// Computes the arrival time of a stream message sent `now` with a
    /// sampled `one_way` latency, charging connection setup (two extra
    /// one-way trips: SYN + SYN-ACK) on first use of the pair and
    /// enforcing in-order delivery per direction.
    pub fn delivery_time(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        now: SimTime,
        one_way: Duration,
    ) -> SimTime {
        let key = (from, to);
        let mut arrival = now + one_way;
        if !self.established.contains(&key) {
            // Full-duplex: establishing a->b also establishes b->a.
            self.established.insert(key);
            self.established.insert((to, from));
            arrival += one_way + one_way;
        }
        if let Some(&last) = self.last_arrival.get(&key) {
            if arrival < last {
                arrival = last;
            }
        }
        self.last_arrival.insert(key, arrival);
        arrival
    }

    /// Whether `from -> to` has an established connection.
    pub fn is_established(&self, from: Endpoint, to: Endpoint) -> bool {
        self.established.contains(&(from, to))
    }

    /// Records `a <-> b` as established without charging setup, in both
    /// directions. The sharded engine keeps one book per node: the
    /// sender's book charges the handshake, and the receiver marks the
    /// pair established when the first framed message arrives (accepting
    /// a connection establishes it server-side), so its replies skip the
    /// setup RTTs just as they do under the shared-book engine.
    pub fn mark_established(&mut self, a: Endpoint, b: Endpoint) {
        self.established.insert((a, b));
        self.established.insert((b, a));
    }

    /// Drops all connection state involving `node` (crash/restart).
    pub fn reset_node(&mut self, node: NodeId) {
        self.established.retain(|(a, b)| a.node != node && b.node != node);
        self.last_arrival.retain(|(a, b), _| a.node != node && b.node != node);
    }

    /// Number of established (directed) connection entries.
    pub fn connection_count(&self) -> usize {
        self.established.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_wire::Port;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn model_with(n: u32) -> NetworkModel {
        let mut m = NetworkModel::new();
        for i in 0..n {
            m.register_node(NodeId(i), RealmId((i % 2) as u16));
        }
        m
    }

    #[test]
    fn defaults_by_realm() {
        let m = model_with(4);
        // 0 and 2 share realm 0 -> LAN
        assert_eq!(m.spec_between(NodeId(0), NodeId(2)).unwrap(), m.intra_realm_spec);
        // 0 and 1 differ -> WAN
        assert_eq!(m.spec_between(NodeId(0), NodeId(1)).unwrap(), m.inter_realm_spec);
        // loopback
        assert_eq!(m.spec_between(NodeId(0), NodeId(0)).unwrap(), m.local_spec);
        // unregistered
        assert!(m.spec_between(NodeId(0), NodeId(99)).is_none());
    }

    #[test]
    fn overrides_and_partitions() {
        let mut m = model_with(2);
        let fast = LinkSpec::wan(Duration::from_millis(5));
        m.set_link(NodeId(0), NodeId(1), fast);
        assert_eq!(m.spec_between(NodeId(1), NodeId(0)).unwrap(), fast);
        m.partition(NodeId(0), NodeId(1));
        assert!(m.spec_between(NodeId(0), NodeId(1)).is_none());
        assert_eq!(m.datagram_fate(NodeId(0), NodeId(1), &mut rng()), DatagramFate::Unreachable);
        m.heal(NodeId(0), NodeId(1));
        assert_eq!(m.spec_between(NodeId(0), NodeId(1)).unwrap(), fast);
    }

    #[test]
    fn latency_sampling_within_bounds() {
        let spec = LinkSpec::wan(Duration::from_millis(50));
        let mut r = rng();
        for _ in 0..1000 {
            let l = spec.sample_latency(&mut r);
            assert!(l >= spec.latency);
            assert!(l <= spec.latency + spec.jitter);
        }
    }

    #[test]
    fn loss_rate_roughly_matches() {
        let spec = LinkSpec::local().with_loss(0.3);
        let mut r = rng();
        let lost = (0..20_000).filter(|_| spec.sample_loss(&mut r)).count();
        let rate = lost as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn wan_loss_grows_with_distance() {
        let near = LinkSpec::wan(Duration::from_millis(5));
        let far = LinkSpec::wan(Duration::from_millis(100));
        assert!(far.loss > near.loss);
        assert!(far.loss <= 0.05);
    }

    #[test]
    fn multicast_is_realm_scoped_and_excludes_sender() {
        let mut m = model_with(6); // realms: even->0, odd->1
        let g = GroupId(9);
        for i in 0..6 {
            m.join_group(g, NodeId(i));
        }
        let got = m.multicast_recipients(g, NodeId(0));
        assert_eq!(got, vec![NodeId(2), NodeId(4)]);
        m.leave_group(g, NodeId(2));
        assert_eq!(m.multicast_recipients(g, NodeId(0)), vec![NodeId(4)]);
        // sender not in the group still reaches members in its realm
        assert_eq!(m.multicast_recipients(g, NodeId(4)), vec![NodeId(0)]);
    }

    #[test]
    fn stream_book_charges_setup_once() {
        let mut book = StreamBook::new();
        let a = Endpoint::new(NodeId(0), Port(1));
        let b = Endpoint::new(NodeId(1), Port(2));
        let lat = Duration::from_millis(10);
        let t1 = book.delivery_time(a, b, SimTime::ZERO, lat);
        assert_eq!(t1.as_millis(), 30); // 1 data + 2 setup trips
        let t2 = book.delivery_time(a, b, t1, lat);
        assert_eq!(t2.as_millis(), 40); // established now
        // reverse direction was established by the handshake
        let t3 = book.delivery_time(b, a, SimTime::from_millis(35), lat);
        assert_eq!(t3.as_millis(), 45);
    }

    #[test]
    fn stream_book_enforces_ordering() {
        let mut book = StreamBook::new();
        let a = Endpoint::new(NodeId(0), Port(1));
        let b = Endpoint::new(NodeId(1), Port(2));
        let t1 = book.delivery_time(a, b, SimTime::ZERO, Duration::from_millis(50));
        // Second message sent later but with much lower sampled latency
        // must not overtake the first.
        let t2 = book.delivery_time(a, b, SimTime::from_millis(60), Duration::from_millis(1));
        assert!(t2 >= t1);
    }

    #[test]
    fn stream_book_reset_node_forces_new_handshake() {
        let mut book = StreamBook::new();
        let a = Endpoint::new(NodeId(0), Port(1));
        let b = Endpoint::new(NodeId(1), Port(2));
        book.delivery_time(a, b, SimTime::ZERO, Duration::from_millis(10));
        assert!(book.is_established(a, b));
        book.reset_node(NodeId(1));
        assert!(!book.is_established(a, b));
        let t = book.delivery_time(a, b, SimTime::from_millis(100), Duration::from_millis(10));
        assert_eq!(t.as_millis(), 130); // setup charged again
    }
}

#[cfg(test)]
mod bandwidth_tests {
    use super::*;
    use nb_wire::NodeId;
    use std::time::Duration;

    #[test]
    fn transmission_delay_math() {
        let spec = LinkSpec::lan(); // 12.5 MB/s
        assert_eq!(spec.transmission_delay(0), Duration::ZERO);
        assert_eq!(spec.transmission_delay(12_500_000), Duration::from_secs(1));
        assert_eq!(spec.transmission_delay(1_250), Duration::from_micros(100));
        let unlimited = LinkSpec::local();
        assert_eq!(unlimited.transmission_delay(1 << 30), Duration::ZERO);
    }

    #[test]
    fn wire_book_serialises_back_to_back_sends() {
        let mut book = WireBook::new();
        let spec = LinkSpec::wan(Duration::from_millis(10)); // 1.25 MB/s
        let (a, b) = (NodeId(0), NodeId(1));
        // Two 125 KB messages sent at t=0: the second queues behind the
        // first (100 ms serialisation each).
        let d1 = book.serialize(a, b, SimTime::ZERO, 125_000, &spec);
        let d2 = book.serialize(a, b, SimTime::ZERO, 125_000, &spec);
        assert_eq!(d1.as_millis(), 100);
        assert_eq!(d2.as_millis(), 200);
        // A different destination has its own wire.
        let d3 = book.serialize(a, NodeId(2), SimTime::ZERO, 125_000, &spec);
        assert_eq!(d3.as_millis(), 100);
        // After the wire drains, sends start fresh.
        let d4 = book.serialize(a, b, SimTime::from_millis(500), 125_000, &spec);
        assert_eq!(d4.as_millis(), 600);
    }

    #[test]
    fn wire_book_reset_clears_node_state() {
        let mut book = WireBook::new();
        let spec = LinkSpec::wan(Duration::from_millis(10));
        book.serialize(NodeId(0), NodeId(1), SimTime::ZERO, 1_250_000, &spec); // busy 1s
        book.reset_node(NodeId(1));
        let d = book.serialize(NodeId(0), NodeId(1), SimTime::ZERO, 1_250, &spec);
        assert_eq!(d.as_millis(), 1, "queue state was cleared");
    }
}

//! Per-node clocks and their NTP synchronisation model.
//!
//! Paper §5: *"Timestamps in NaradaBrokering are based on the Network
//! Time Protocol (NTP) which ensures that every node … is within 1-20
//! msecs of each other. NTP services at nodes are initialized during node
//! initializations and generally take between 3-5 seconds before the
//! local clock offsets are computed."*
//!
//! A [`ClockState`] models exactly that: the node's *true* offset from
//! global time (unknown to the node, potentially seconds) and the node's
//! *estimate* of that offset (available only after the NTP init delay,
//! accurate to a residual in the 1–20 ms band). Protocol code can only
//! ever read the estimate — the discovery algorithm's delay computation
//! therefore sees honest clock error.

use std::time::Duration;

use rand::Rng;

use crate::time::SimTime;

/// How a node's clock is created and synchronised.
#[derive(Debug, Clone, Copy)]
pub struct ClockProfile {
    /// True offset drawn uniformly from `[-max_true_offset, +max_true_offset]`.
    pub max_true_offset: Duration,
    /// NTP residual error magnitude drawn uniformly from
    /// `[min_residual, max_residual]` (paper: 1–20 ms), with random sign.
    pub min_residual: Duration,
    pub max_residual: Duration,
    /// NTP init completes after a delay drawn uniformly from
    /// `[min_sync_delay, max_sync_delay]` (paper: 3–5 s).
    pub min_sync_delay: Duration,
    pub max_sync_delay: Duration,
}

impl ClockProfile {
    /// The paper's parameters: offsets up to ±2 s, residual 1–20 ms,
    /// sync after 3–5 s.
    pub fn paper() -> ClockProfile {
        ClockProfile {
            max_true_offset: Duration::from_secs(2),
            min_residual: Duration::from_millis(1),
            max_residual: Duration::from_millis(20),
            min_sync_delay: Duration::from_secs(3),
            max_sync_delay: Duration::from_secs(5),
        }
    }

    /// A perfectly synchronised clock (useful for isolating other effects
    /// in ablations and unit tests).
    pub fn perfect() -> ClockProfile {
        ClockProfile {
            max_true_offset: Duration::ZERO,
            min_residual: Duration::ZERO,
            max_residual: Duration::ZERO,
            min_sync_delay: Duration::ZERO,
            max_sync_delay: Duration::ZERO,
        }
    }

    /// Draws a concrete clock state for a node starting at `start`.
    pub fn sample<R: Rng + ?Sized>(&self, start: SimTime, rng: &mut R) -> ClockState {
        let true_offset = sample_signed(rng, self.max_true_offset);
        let residual_mag = sample_range(rng, self.min_residual, self.max_residual);
        let residual = if rng.gen::<bool>() { residual_mag } else { -residual_mag };
        let delay = sample_range_unsigned(rng, self.min_sync_delay, self.max_sync_delay);
        ClockState {
            true_offset_ns: true_offset,
            // The estimate the node will adopt: true offset minus the
            // residual, so that post-sync UTC error equals `residual`.
            synced_estimate_ns: true_offset - residual,
            sync_at: start + delay,
            synced: false,
        }
    }
}

fn sample_signed<R: Rng + ?Sized>(rng: &mut R, max: Duration) -> i64 {
    let max_ns = max.as_nanos() as i64;
    if max_ns == 0 {
        0
    } else {
        rng.gen_range(-max_ns..=max_ns)
    }
}

fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Duration, hi: Duration) -> i64 {
    let (lo, hi) = (lo.as_nanos() as i64, hi.as_nanos() as i64);
    if hi <= lo {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

fn sample_range_unsigned<R: Rng + ?Sized>(rng: &mut R, lo: Duration, hi: Duration) -> Duration {
    let (lo_n, hi_n) = (lo.as_nanos() as u64, hi.as_nanos() as u64);
    if hi_n <= lo_n {
        lo
    } else {
        Duration::from_nanos(rng.gen_range(lo_n..=hi_n))
    }
}

/// The concrete clock of one node.
#[derive(Debug, Clone, Copy)]
pub struct ClockState {
    /// True offset of the node's raw clock from global time (ns). Hidden
    /// from protocol code.
    pub true_offset_ns: i64,
    /// The offset estimate the node adopts once NTP init completes.
    pub synced_estimate_ns: i64,
    /// When NTP init completes.
    pub sync_at: SimTime,
    /// Whether the estimate is active yet.
    pub synced: bool,
}

impl ClockState {
    /// A perfect clock, already synced.
    pub fn perfect() -> ClockState {
        ClockState { true_offset_ns: 0, synced_estimate_ns: 0, sync_at: SimTime::ZERO, synced: true }
    }

    /// The node's raw local clock reading (µs since the Unix epoch) at
    /// global time `now`. Based at [`crate::time::UTC_EPOCH_NS`] so skew
    /// arithmetic never saturates.
    pub fn raw_local_micros(&self, now: SimTime) -> u64 {
        let base = crate::time::UTC_EPOCH_NS + now.as_nanos();
        let ns = if self.true_offset_ns >= 0 {
            base.saturating_add(self.true_offset_ns as u64)
        } else {
            base.saturating_sub(self.true_offset_ns.unsigned_abs())
        };
        ns / 1_000
    }

    /// The node's best UTC estimate (µs since the Unix epoch) at global
    /// time `now`.
    ///
    /// Before NTP sync the raw clock is returned (error up to the full
    /// true offset); afterwards the error is the sampled residual.
    pub fn utc_micros(&self, now: SimTime) -> u64 {
        let est_us = if self.synced { self.synced_estimate_ns / 1_000 } else { 0 };
        let raw = self.raw_local_micros(now);
        if est_us >= 0 {
            raw.saturating_sub(est_us as u64)
        } else {
            raw.saturating_add(est_us.unsigned_abs())
        }
    }

    /// Post-sync UTC error (signed, ns): `utc_estimate - true_utc`.
    pub fn residual_ns(&self) -> i64 {
        self.true_offset_ns - self.synced_estimate_ns
    }

    /// Marks the NTP estimate active. The engine calls this at `sync_at`.
    pub fn mark_synced(&mut self) {
        self.synced = true;
    }

    /// Overrides the offset estimate (used by the wire-level NTP client).
    pub fn set_estimate_ns(&mut self, est: i64) {
        self.synced_estimate_ns = est;
        self.synced = true;
    }

    /// Steps the raw hardware clock by `delta_ns` (chaos fault). The NTP
    /// estimate is left as-is, so the node's UTC estimate degrades by
    /// exactly `delta_ns` until the next estimate override.
    pub fn step_ns(&mut self, delta_ns: i64) {
        self.true_offset_ns += delta_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_profile_residual_within_band() {
        let mut rng = StdRng::seed_from_u64(11);
        let profile = ClockProfile::paper();
        for _ in 0..500 {
            let c = profile.sample(SimTime::ZERO, &mut rng);
            let residual = c.residual_ns().unsigned_abs();
            assert!(
                (1_000_000..=20_000_000).contains(&residual),
                "residual {residual}ns outside 1-20ms"
            );
            let sync_ms = (c.sync_at - SimTime::ZERO).as_millis();
            assert!((3000..=5000).contains(&sync_ms), "sync delay {sync_ms}ms outside 3-5s");
            assert!(c.true_offset_ns.unsigned_abs() <= 2_000_000_000);
            assert!(!c.synced);
        }
    }

    #[test]
    fn utc_error_shrinks_after_sync() {
        let mut rng = StdRng::seed_from_u64(5);
        let profile = ClockProfile::paper();
        let mut c = profile.sample(SimTime::ZERO, &mut rng);
        // Force a visible offset for the pre-sync check.
        c.true_offset_ns = 1_500_000_000; // +1.5s
        let now = SimTime::from_secs(10);
        let pre_err =
            (c.utc_micros(now) as i64 - crate::time::true_utc_micros(now) as i64).unsigned_abs();
        assert!(pre_err >= 1_000_000, "pre-sync error should be ~1.5s, was {pre_err}µs");
        c.synced_estimate_ns = c.true_offset_ns - 5_000_000; // 5ms residual
        c.mark_synced();
        let post_err =
            (c.utc_micros(now) as i64 - crate::time::true_utc_micros(now) as i64).unsigned_abs();
        assert_eq!(post_err, 5_000);
    }

    #[test]
    fn perfect_clock_reads_true_time() {
        let c = ClockState::perfect();
        let now = SimTime::from_millis(1234);
        assert_eq!(c.utc_micros(now), crate::time::true_utc_micros(now));
        assert_eq!(c.residual_ns(), 0);
    }

    #[test]
    fn raw_local_applies_true_offset() {
        let mut c = ClockState::perfect();
        c.true_offset_ns = -500_000; // 0.5ms behind
        let now = SimTime::from_millis(10);
        assert_eq!(c.raw_local_micros(now), crate::time::true_utc_micros(now) - 500);
    }

    #[test]
    fn set_estimate_overrides() {
        let mut c = ClockState::perfect();
        c.true_offset_ns = 1_000_000;
        c.set_estimate_ns(990_000);
        assert!(c.synced);
        assert_eq!(c.residual_ns(), 10_000);
    }

    #[test]
    fn perfect_profile_samples_are_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = ClockProfile::perfect().sample(SimTime::from_secs(1), &mut rng);
        assert_eq!(c.true_offset_ns, 0);
        assert_eq!(c.synced_estimate_ns, 0);
        assert_eq!(c.sync_at, SimTime::from_secs(1));
    }
}

//! # nb-net
//!
//! The network substrate every protocol in this workspace runs on. It
//! replaces the paper's five-site WAN testbed (Table 1) with a faithful,
//! deterministic model:
//!
//! * [`time`] — virtual time ([`SimTime`]),
//! * [`clock`] — per-node clocks with true offsets and NTP-estimated
//!   offsets (the paper's "every node is within 1–20 msecs" guarantee is a
//!   *model parameter* here, not an assumption),
//! * [`runtime`] — the [`Actor`]/[`Context`] abstraction all protocol
//!   logic is written against,
//! * [`link`] — link latency/jitter/loss models, TCP-like ordering and
//!   connection setup, realm-scoped multicast,
//! * [`sim`] — the single-threaded, seeded, discrete-event engine used by
//!   every figure reproduction,
//! * [`shard`] — the conservative-lookahead sharded engine: one logical
//!   process per node, per-epoch safe horizons, byte-identical digests
//!   at every worker/shard count (DESIGN.md §13),
//! * [`threaded`] — a wall-clock runtime driving the *same* actors with
//!   real threads and channels (examples + integration tests),
//! * [`wan`] — the Table-1 site inventory and its latency matrix,
//! * [`ntp`] — an actual NTP request/response protocol implementation for
//!   nodes that estimate their clock offset on the wire instead of by
//!   model fiat.

pub mod chaos;
pub mod clock;
pub mod link;
pub mod ntp;
pub mod runtime;
pub mod shard;
pub mod sim;
pub mod threaded;
pub mod time;
pub mod topogen;
pub mod wan;

pub use chaos::{ChaosProfile, ChaosScheduler, ChaosTargets, Fault, FaultPlan, PacketFaults, TimedFault};
pub use clock::{ClockProfile, ClockState};
pub use link::{LinkSpec, NetworkModel};
pub use runtime::{Actor, Context, Incoming};
pub use shard::{DiscoveryEngine, ShardPlan, ShardRespawnFn, ShardedSim};
pub use sim::{NetStats, RespawnFn, Sim, TraceRecord, WireV2Config};
pub use threaded::ThreadedNet;
pub use time::SimTime;
pub use topogen::{TopologyKind, TopologySpec, WanTopology};
pub use wan::{Site, WanModel};

/// Re-export of the wire-level address types for convenience.
pub use nb_wire::{Endpoint, GroupId, NodeId, Port, RealmId};

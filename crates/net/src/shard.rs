//! Conservative parallel discrete-event execution.
//!
//! [`crate::sim::Sim`] is single-threaded: one queue, one RNG, one clock.
//! That is perfect for pinned-seed reproductions but leaves every core
//! but one idle during large campaigns. This module shards the engine
//! *by node id*: every node becomes its own logical process (LP) with a
//! private event queue, RNG stream, stream/wire books and traffic
//! counters, and a coordinator runs the classic conservative-lookahead
//! protocol (Chandy/Misra/Bryant by way of a barrier-synchronous epoch
//! loop) over them:
//!
//! 1. **Lookahead.** The WAN model gives a hard floor on cross-node
//!    delay: no message between two distinct nodes can arrive sooner
//!    than [`NetworkModel::min_cross_node_latency`] after it was sent
//!    (jitter, bandwidth serialisation and stream setup only add time,
//!    and self-sends never leave their LP). With `m` the earliest
//!    pending event anywhere, every event below the safe horizon
//!    `H = m + lookahead` is therefore causally independent across LPs.
//! 2. **Epoch.** Each LP processes its own events with `at < H` in
//!    (time, seq) order. Cross-LP deliveries are not pushed into the
//!    destination queue (that would race); they are buffered in the
//!    sender's *outbox*, in emission order.
//! 3. **Barrier.** The coordinator drains outboxes in ascending node id
//!    (then emission order) and enqueues each message at its
//!    destination, assigns fresh per-LP sequence numbers, and applies
//!    deferred network mutations (multicast joins/leaves, crash-induced
//!    connection resets) in the same node order.
//!
//! Because LP state, RNG streams (`SplitMix64(seed ^ node_id)` — that is
//! exactly what [`StdRng::seed_from_u64`] expands the xor through), the
//! lookahead window, the horizon sequence and the merge order are all
//! pure functions of (topology, seed), the run — including its event
//! digest — is **byte-identical for any worker count and any shard
//! count**. A [`ShardPlan`] only decides which worker executes which
//! LP, never what the LPs compute; with one worker the engine is the
//! degenerate serial case of the same algorithm.
//!
//! Two scheduling semantics intentionally differ from `Sim` (documented
//! here because digests are *not* comparable between the engines, only
//! across configurations of the same engine):
//!
//! * Globally-scoped faults (partitions, packet-fault windows) apply at
//!   epoch boundaries, always before protocol events carrying the same
//!   timestamp; `Sim` interleaves them by scheduling order.
//! * `join_group`/`leave_group` become visible at the next barrier
//!   rather than immediately. Warmed-up scenarios never notice (joins
//!   happen at start-up, multicasts seconds later), but a same-instant
//!   join-then-multicast would.
//!
//! Threading is confined to [`ShardedSim::run_epochs_threaded`]: a
//! worker pool on the crossbeam channel shim, moving whole LP groups
//! through channels each epoch. Workers share nothing mutable — they
//! own the LPs they were handed and borrow an immutable snapshot of the
//! network — which is why this module and [`crate::threaded`] are the
//! only sanctioned homes for thread primitives in nb-net (lint rule
//! D008).

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel;
use nb_wire::{Endpoint, GroupId, Message, NodeId, Port, RealmId, WireMsg};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::chaos::{Fault, FaultPlan, PacketFaults};
use crate::clock::{ClockProfile, ClockState};
use crate::link::{DatagramFate, NetworkModel, StreamBook, WireBook};
use crate::runtime::{Actor, Context, Incoming};
use crate::sim::{NetStats, Sim};
use crate::time::SimTime;

/// Builds a fresh actor for a node restarted with state loss under the
/// sharded engine. Unlike [`crate::sim::RespawnFn`] it must be `Send`:
/// the factory lives inside its node's logical process, which migrates
/// across worker threads.
pub type ShardRespawnFn = Box<dyn FnMut() -> Box<dyn Actor> + Send>;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(h: &mut u64, x: u64) {
    *h ^= x;
    *h = h.wrapping_mul(FNV_PRIME);
}

fn mix_bytes(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        mix(h, b as u64);
    }
}

/// Assignment of logical processes (nodes) to executor groups.
///
/// Greedy min-cut over link latencies, Kruskal-style: all node pairs
/// are visited from the lowest-latency link upwards and their clusters
/// merged while the combined size stays within `ceil(n / shards)`, so
/// the links left *cut* are the highest-latency ones and chatty
/// low-latency clusters — brokers behind the same switch — co-locate.
/// Clusters are then dealt into groups in ascending order of their
/// smallest node id, splitting only at capacity boundaries. The plan is
/// a pure function of the network model, so it is identical on every
/// run — but even a pathological plan cannot change results, only wall
/// time: grouping decides *where* an LP executes, never *what* it sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of executor groups.
    pub shards: usize,
    /// `assignment[node_id] = group index`.
    pub assignment: Vec<usize>,
}

/// Above this node count the planner stops materialising all O(n²)
/// pairs and clusters from the *sparse* view of the model instead:
/// explicit link overrides plus a per-realm chain. Both paths are pure
/// functions of the model, and the plan never affects results — only
/// which worker runs which LP.
const DENSE_PARTITION_NODES: usize = 2048;

/// Union-find `find` with path halving. Roots are kept at the smallest
/// member id (see `union` below), matching the label-relabel scheme the
/// dense planner historically used, so cluster identity — and therefore
/// the dealt assignment — is unchanged by the union-find rewrite.
fn uf_find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

impl ShardPlan {
    /// Partitions `nodes` logical processes into at most `shards` groups.
    pub fn partition(net: &NetworkModel, nodes: usize, shards: usize) -> ShardPlan {
        let shards = shards.clamp(1, nodes.max(1));
        let cap = nodes.div_ceil(shards);
        // Candidate edges, cheapest link first; ties break on the pair's
        // ids so the ordering is total and deterministic.
        let mut edges: Vec<(Duration, usize, usize)> = Vec::new();
        if nodes <= DENSE_PARTITION_NODES {
            // Every reachable pair (the historical exact path).
            for a in 0..nodes {
                for b in (a + 1)..nodes {
                    if let Some(spec) = net.spec_between(NodeId(a as u32), NodeId(b as u32)) {
                        edges.push((spec.latency, a, b));
                    }
                }
            }
        } else {
            // Sparse path: a realm's members form an intra-realm-latency
            // chain (enough connectivity to co-locate the realm without
            // materialising its clique), plus every explicit override.
            let mut prev_by_realm: BTreeMap<RealmId, usize> = BTreeMap::new();
            for (n, realm) in net.registered_nodes() {
                let idx = n.0 as usize;
                if idx >= nodes {
                    continue;
                }
                if let Some(prev) = prev_by_realm.insert(realm, idx) {
                    edges.push((net.intra_realm_spec.latency, prev, idx));
                }
            }
            for (a, b, spec) in net.link_overrides() {
                let (ai, bi) = (a.0 as usize, b.0 as usize);
                if a == b || ai >= nodes || bi >= nodes {
                    continue;
                }
                edges.push((spec.latency, ai, bi));
            }
        }
        edges.sort();
        // Kruskal-style greedy merge under the capacity bound, on a
        // union-find whose roots stay at each cluster's smallest id.
        let mut parent: Vec<usize> = (0..nodes).collect();
        let mut sizes: Vec<usize> = vec![1; nodes];
        let mut count = nodes;
        for (_, a, b) in edges {
            if count <= shards {
                break;
            }
            let (ra, rb) = (uf_find(&mut parent, a), uf_find(&mut parent, b));
            if ra == rb || sizes[ra] + sizes[rb] > cap {
                continue;
            }
            let (keep, gone) = (ra.min(rb), ra.max(rb));
            parent[gone] = keep;
            sizes[keep] += sizes[gone];
            count -= 1;
        }
        // Flatten clusters (ordered by smallest member id, members
        // ascending) and deal sequentially into capacity-`cap` groups:
        // cluster members stay adjacent, so a cluster splits across
        // groups only when a capacity boundary forces it.
        let mut order: Vec<(usize, usize)> = Vec::with_capacity(nodes);
        for v in 0..nodes {
            let root = uf_find(&mut parent, v);
            order.push((root, v));
        }
        order.sort_unstable();
        let mut assignment = vec![0usize; nodes];
        for (dealt, &(_, v)) in order.iter().enumerate() {
            assignment[v] = dealt / cap;
        }
        ShardPlan { shards, assignment }
    }
}

/// An event in one LP's private queue. Unlike [`crate::sim::Sim`]'s
/// kinds these carry no node id — the queue they sit in *is* the node.
enum LpEvent {
    Deliver { from: Endpoint, to_port: Port, msg: WireMsg, len: usize, stream: bool },
    Timer { token: u64, generation: u64 },
    ClockSync,
    Start,
    Inject { incoming: Incoming },
    Fault { fault: Fault },
}

impl LpEvent {
    /// Faults execute on schedule even while their target is stalled
    /// (mirrors `Sim`, where fault events have no target node).
    fn defers_under_stall(&self) -> bool {
        !matches!(self, LpEvent::Fault { .. })
    }
}

struct Queued {
    at: SimTime,
    seq: u64,
    ev: LpEvent,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    // Reversed so the BinaryHeap pops the earliest event first; `seq`
    // breaks ties deterministically in scheduling order.
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A cross-LP delivery buffered in the sender's outbox until the epoch
/// barrier. Emission order within one outbox is preserved by the merge.
struct OutMsg {
    at: SimTime,
    to: Endpoint,
    from: Endpoint,
    msg: WireMsg,
    len: usize,
    stream: bool,
}

/// A network-model mutation requested mid-epoch. The model is shared
/// read-only during an epoch, so these apply at the barrier, in node
/// order.
enum DeferredOp {
    Join(GroupId),
    Leave(GroupId),
    /// The emitting node crashed: every *other* LP must forget its
    /// stream connections and wire-clock entries. The crashed LP resets
    /// its own books inline (a same-epoch restart may already have
    /// created fresh entries that must survive the barrier).
    ResetPeer,
}

/// One logical process: a node plus every piece of engine state that
/// only it touches. `Send`, so whole LPs migrate between workers.
struct Lp {
    id: NodeId,
    name: String,
    realm: RealmId,
    clock: ClockState,
    up: bool,
    stalled_until: SimTime,
    /// Generation slab for timers: `(token, generation)`.
    timers: Vec<(u64, u64)>,
    actor: Option<Box<dyn Actor>>,
    respawn: Option<ShardRespawnFn>,
    queue: BinaryHeap<Queued>,
    seq: u64,
    /// Private RNG stream, seeded `root_seed ^ node_id` — a function of
    /// the node's identity, never of which worker runs it.
    rng: StdRng,
    streams: StreamBook,
    wires: WireBook,
    stats: NetStats,
    events_processed: u64,
    digest: u64,
    /// Local virtual time: the timestamp of the last processed event.
    now: SimTime,
    outbox: Vec<OutMsg>,
    ops: Vec<DeferredOp>,
}

impl Lp {
    fn new(id: NodeId, name: &str, realm: RealmId, clock: ClockState, rng: StdRng) -> Lp {
        Lp {
            id,
            name: name.to_string(),
            realm,
            clock,
            up: true,
            stalled_until: SimTime::ZERO,
            timers: Vec::new(),
            actor: None,
            respawn: None,
            queue: BinaryHeap::new(),
            seq: 0,
            rng,
            streams: StreamBook::new(),
            wires: WireBook::new(),
            stats: NetStats::default(),
            events_processed: 0,
            digest: FNV_OFFSET,
            now: SimTime::ZERO,
            outbox: Vec::new(),
            ops: Vec::new(),
        }
    }

    fn enqueue(&mut self, at: SimTime, ev: LpEvent) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Queued { at, seq, ev });
    }

    fn arm_timer(&mut self, token: u64) -> u64 {
        for slot in &mut self.timers {
            if slot.0 == token {
                slot.1 += 1;
                return slot.1;
            }
        }
        self.timers.push((token, 1));
        1
    }

    fn cancel_timer(&mut self, token: u64) {
        for slot in &mut self.timers {
            if slot.0 == token {
                slot.1 += 1;
                return;
            }
        }
    }

    fn timer_live(&self, token: u64, generation: u64) -> bool {
        self.timers.iter().any(|&(t, g)| t == token && g == generation)
    }

    /// Runs this LP's events strictly below `horizon`. Within the
    /// window the LP is causally closed: nothing another LP does this
    /// epoch can reach it before `horizon`.
    fn process_until(&mut self, horizon: SimTime, net: &NetworkModel, pf: PacketFaults) {
        while let Some(top) = self.queue.peek() {
            if top.at >= horizon {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.handle(ev, net, pf);
        }
    }

    fn handle(&mut self, ev: Queued, net: &NetworkModel, pf: PacketFaults) {
        // Monotonic clamp rather than an assert: with a (degenerate)
        // zero-latency link override the 1 ns lookahead floor exceeds
        // the true minimum and a merged delivery can carry a timestamp
        // the LP already passed. Ordering stays deterministic.
        if self.now < ev.at {
            self.now = ev.at;
        }
        if ev.ev.defers_under_stall() && self.stalled_until > ev.at {
            let until = self.stalled_until;
            self.enqueue(until, ev.ev);
            return;
        }
        self.events_processed += 1;
        digest_event(&mut self.digest, ev.at, &ev.ev);
        match ev.ev {
            LpEvent::Start => {
                if self.up {
                    self.with_actor(net, pf, |actor, ctx| actor.on_start(ctx));
                }
            }
            LpEvent::ClockSync => {
                let up = self.up;
                self.clock.mark_synced();
                if up {
                    self.dispatch(net, pf, Incoming::ClockSynced);
                }
            }
            LpEvent::Timer { token, generation } => {
                if self.up && self.timer_live(token, generation) {
                    self.dispatch(net, pf, Incoming::Timer { token });
                }
            }
            LpEvent::Inject { incoming } => {
                if self.up {
                    self.dispatch(net, pf, incoming);
                }
            }
            LpEvent::Fault { fault } => self.apply_local_fault(fault),
            LpEvent::Deliver { from, to_port, msg, len, stream } => {
                if !self.up {
                    self.stats.dropped_node_down += 1;
                    return;
                }
                self.stats.bytes_delivered += len as u64;
                *self.stats.by_kind.entry(msg.kind()).or_insert(0) += 1;
                if stream {
                    self.stats.stream_delivered += 1;
                    // Accepting the first framed message establishes the
                    // connection server-side too, so replies on the same
                    // port pair skip the setup RTTs (the sender's book
                    // already charged them).
                    self.streams.mark_established(Endpoint::new(self.id, to_port), from);
                    self.dispatch(net, pf, Incoming::Stream { from, to_port, msg });
                } else {
                    self.stats.datagrams_delivered += 1;
                    self.dispatch(net, pf, Incoming::Datagram { from, to_port, msg });
                }
            }
        }
    }

    /// Node-scoped faults routed to this LP's queue (the "owning node's
    /// shard queue" of the chaos pipeline).
    fn apply_local_fault(&mut self, fault: Fault) {
        match fault {
            Fault::Crash { .. } => self.crash_local(),
            Fault::Restart { lose_state, .. } => {
                if self.up {
                    self.crash_local();
                }
                if lose_state {
                    if let Some(factory) = self.respawn.as_mut() {
                        self.actor = Some(factory());
                    }
                }
                self.up = true;
                let now = self.now;
                self.enqueue(now, LpEvent::Start);
            }
            Fault::Stall { dur, .. } => {
                let until = self.now + dur;
                if until > self.stalled_until {
                    self.stalled_until = until;
                }
            }
            Fault::ClockStep { delta_ns, .. } => self.clock.step_ns(delta_ns),
            // Globally-scoped faults never reach an LP queue; the
            // coordinator applies them at epoch boundaries.
            _ => {}
        }
    }

    fn crash_local(&mut self) {
        self.up = false;
        // Bump rather than clear, matching `Sim::crash`: clearing would
        // restart generations at 1 and let a pre-crash in-flight firing
        // collide with a freshly armed timer.
        for slot in &mut self.timers {
            slot.1 += 1;
        }
        let id = self.id;
        self.streams.reset_node(id);
        self.wires.reset_node(id);
        self.ops.push(DeferredOp::ResetPeer);
    }

    fn dispatch(&mut self, net: &NetworkModel, pf: PacketFaults, incoming: Incoming) {
        self.with_actor(net, pf, |actor, ctx| actor.on_incoming(incoming, ctx));
    }

    fn with_actor(
        &mut self,
        net: &NetworkModel,
        pf: PacketFaults,
        f: impl FnOnce(&mut dyn Actor, &mut dyn Context),
    ) {
        let Some(mut actor) = self.actor.take() else {
            return;
        };
        {
            let mut ctx = LpCtx { lp: self, net, pf };
            f(actor.as_mut(), &mut ctx);
        }
        self.actor = Some(actor);
    }
}

/// Folds one processed event into the LP's running FNV-1a digest. The
/// encoding is positional (tag first, then fields), so distinct event
/// shapes can never collide by concatenation.
fn digest_event(h: &mut u64, at: SimTime, ev: &LpEvent) {
    mix(h, at.as_nanos());
    match ev {
        LpEvent::Start => mix(h, 1),
        LpEvent::ClockSync => mix(h, 2),
        LpEvent::Timer { token, generation } => {
            mix(h, 3);
            mix(h, *token);
            mix(h, *generation);
        }
        LpEvent::Inject { incoming } => {
            mix(h, 4);
            match incoming {
                Incoming::Datagram { from, to_port, msg } => {
                    mix(h, 40);
                    mix(h, from.node.0 as u64);
                    mix(h, from.port.0 as u64);
                    mix(h, to_port.0 as u64);
                    mix_bytes(h, msg.kind().as_bytes());
                }
                Incoming::Stream { from, to_port, msg } => {
                    mix(h, 41);
                    mix(h, from.node.0 as u64);
                    mix(h, from.port.0 as u64);
                    mix(h, to_port.0 as u64);
                    mix_bytes(h, msg.kind().as_bytes());
                }
                Incoming::Timer { token } => {
                    mix(h, 42);
                    mix(h, *token);
                }
                Incoming::ClockSynced => mix(h, 43),
            }
        }
        LpEvent::Fault { fault } => {
            mix(h, 5);
            mix_bytes(h, fault.to_string().as_bytes());
        }
        LpEvent::Deliver { from, to_port, msg, len, stream } => {
            mix(h, 6);
            mix(h, from.node.0 as u64);
            mix(h, from.port.0 as u64);
            mix(h, to_port.0 as u64);
            mix(h, *len as u64);
            mix(h, *stream as u64);
            mix_bytes(h, msg.kind().as_bytes());
        }
    }
}

struct LpCtx<'a> {
    lp: &'a mut Lp,
    net: &'a NetworkModel,
    pf: PacketFaults,
}

impl LpCtx<'_> {
    /// Routes a scheduled delivery: self-sends go straight into the
    /// local queue (they never cross an LP boundary, which is why the
    /// loopback spec is excluded from the lookahead), everything else
    /// into the outbox for the barrier merge.
    fn deliver_out(
        &mut self,
        at: SimTime,
        from: Endpoint,
        to: Endpoint,
        msg: WireMsg,
        len: usize,
        stream: bool,
    ) {
        if to.node == self.lp.id {
            self.lp.enqueue(at, LpEvent::Deliver { from, to_port: to.port, msg, len, stream });
        } else {
            self.lp.outbox.push(OutMsg { at, to, from, msg, len, stream });
        }
    }

    /// Mirror of `SimInner::send_datagram_from`, drawing from the LP's
    /// private RNG stream with the identical roll order.
    fn send_datagram(&mut self, from: Endpoint, to: Endpoint, msg: &WireMsg, len: &mut Option<usize>) {
        self.lp.stats.datagrams_sent += 1;
        // Sends to down nodes still roll the dice and schedule delivery;
        // the up-check happens at delivery time so RNG consumption does
        // not depend on destination state.
        match self.net.datagram_fate(from.node, to.node, &mut self.lp.rng) {
            DatagramFate::Unreachable => {
                self.lp.stats.unreachable += 1;
                if self.net.path_blocked(from.node, to.node) {
                    self.lp.stats.unreachable_partitioned += 1;
                } else {
                    self.lp.stats.unreachable_no_path += 1;
                }
            }
            DatagramFate::Lost => self.lp.stats.datagrams_lost += 1,
            DatagramFate::Deliver(lat) => {
                let len = *len.get_or_insert_with(|| msg.body_len());
                let spec =
                    self.net.spec_between(from.node, to.node).expect("deliverable implies a path");
                let now = self.lp.now;
                let serialized_at = self.lp.wires.serialize(from.node, to.node, now, len, &spec);
                let mut at = serialized_at + lat;
                let mut duplicate_at = None;
                if self.pf.is_active() {
                    // Fixed roll order (corrupt, reorder, duplicate) so a
                    // given fault window consumes an identical RNG stream
                    // regardless of which probabilities are zero.
                    let f = self.pf;
                    let extra_ns = f.extra_delay.as_nanos() as u64;
                    if f.corrupt > 0.0 && self.lp.rng.gen::<f64>() < f.corrupt {
                        self.lp.stats.datagrams_corrupted += 1;
                        return;
                    }
                    if f.reorder > 0.0 && self.lp.rng.gen::<f64>() < f.reorder {
                        self.lp.stats.datagrams_reordered += 1;
                        if extra_ns > 0 {
                            at += Duration::from_nanos(self.lp.rng.gen_range(0..=extra_ns));
                        }
                    }
                    if f.duplicate > 0.0 && self.lp.rng.gen::<f64>() < f.duplicate {
                        self.lp.stats.datagrams_duplicated += 1;
                        let extra = if extra_ns > 0 {
                            Duration::from_nanos(self.lp.rng.gen_range(0..=extra_ns))
                        } else {
                            Duration::ZERO
                        };
                        duplicate_at = Some(at + extra);
                    }
                }
                self.deliver_out(at, from, to, msg.clone(), len, false);
                if let Some(dup_at) = duplicate_at {
                    self.deliver_out(dup_at, from, to, msg.clone(), len, false);
                }
            }
        }
    }
}

impl Context for LpCtx<'_> {
    fn me(&self) -> NodeId {
        self.lp.id
    }

    fn realm(&self) -> RealmId {
        self.lp.realm
    }

    fn now(&self) -> SimTime {
        self.lp.now
    }

    fn utc_micros(&self) -> u64 {
        self.lp.clock.utc_micros(self.lp.now)
    }

    fn clock_synced(&self) -> bool {
        self.lp.clock.synced
    }

    fn raw_local_micros(&self) -> u64 {
        self.lp.clock.raw_local_micros(self.lp.now)
    }

    fn set_clock_estimate_ns(&mut self, est_offset_ns: i64) {
        self.lp.clock.set_estimate_ns(est_offset_ns);
    }

    fn send_udp(&mut self, from_port: Port, to: Endpoint, msg: &Message) {
        let wire = WireMsg::new(msg.clone());
        self.send_udp_wire(from_port, to, &wire);
    }

    fn send_stream(&mut self, from_port: Port, to: Endpoint, msg: &Message) {
        let wire = WireMsg::new(msg.clone());
        self.send_stream_wire(from_port, to, &wire);
    }

    fn send_udp_wire(&mut self, from_port: Port, to: Endpoint, msg: &WireMsg) {
        let from = Endpoint::new(self.lp.id, from_port);
        let mut len = None;
        self.send_datagram(from, to, msg, &mut len);
    }

    fn send_stream_wire(&mut self, from_port: Port, to: Endpoint, msg: &WireMsg) {
        let from = Endpoint::new(self.lp.id, from_port);
        let Some(lat) = self.net.stream_latency(from.node, to.node, &mut self.lp.rng) else {
            self.lp.stats.unreachable += 1;
            return;
        };
        let len = msg.body_len();
        let spec = self.net.spec_between(from.node, to.node).expect("stream latency implies a path");
        let now = self.lp.now;
        let serialized_at = self.lp.wires.serialize(from.node, to.node, now, len, &spec);
        let at = self.lp.streams.delivery_time(from, to, serialized_at, lat);
        self.deliver_out(at, from, to, msg.clone(), len, true);
    }

    fn send_multicast(&mut self, from_port: Port, group: GroupId, to_port: Port, msg: &Message) {
        let from = Endpoint::new(self.lp.id, from_port);
        let recipients = self.net.multicast_recipients(group, self.lp.id);
        // One shared handle and at most one serialisation for the whole
        // fan-out; recipients iterate in ascending node order, so the
        // outbox order is deterministic.
        let wire = WireMsg::new(msg.clone());
        let mut len = None;
        for r in recipients {
            let to = Endpoint::new(r, to_port);
            self.send_datagram(from, to, &wire, &mut len);
        }
    }

    fn join_group(&mut self, group: GroupId) {
        self.lp.ops.push(DeferredOp::Join(group));
    }

    fn leave_group(&mut self, group: GroupId) {
        self.lp.ops.push(DeferredOp::Leave(group));
    }

    fn set_timer(&mut self, delay: Duration, token: u64) {
        let generation = self.lp.arm_timer(token);
        let at = self.lp.now + delay;
        self.lp.enqueue(at, LpEvent::Timer { token, generation });
    }

    fn cancel_timer(&mut self, token: u64) {
        self.lp.cancel_timer(token);
    }

    fn rng(&mut self) -> &mut dyn RngCore {
        &mut self.lp.rng
    }
}

/// One epoch's worth of work handed to a worker: the LPs of one group,
/// an immutable network snapshot and the horizon. Ownership-passing —
/// nothing here is shared mutably across threads.
struct EpochTask {
    gidx: usize,
    lps: Vec<Lp>,
    /// Slots (within `lps`) that actually have events this epoch; the
    /// worker touches only these, so a mostly-idle group costs O(active)
    /// rather than O(group).
    active_slots: Vec<usize>,
    net: Arc<NetworkModel>,
    pf: PacketFaults,
    horizon: SimTime,
}

/// Cached topology products: the shard plan and the lookahead window,
/// both pure functions of the network model. Recomputed whenever the
/// model may have changed ([`ShardedSim::network_mut`], node additions)
/// — so every `run_until` sees exactly the values an uncached run would
/// have derived, without paying the O(n²)/O(E) planning walk per call.
struct TopoCache {
    plan: ShardPlan,
    lookahead: Duration,
    nodes: usize,
    shards: usize,
}

/// The sharded simulator. API mirrors [`Sim`] (construction, node
/// management, faults, injection, `run_for`/`run_until`, actor access)
/// plus [`ShardedSim::digest`], [`ShardedSim::set_workers`] and
/// [`ShardedSim::set_shards`].
pub struct ShardedSim {
    seed: u64,
    now: SimTime,
    lps: Vec<Lp>,
    network: Arc<NetworkModel>,
    clock_profile: ClockProfile,
    packet_faults: PacketFaults,
    /// Globally-scoped faults (partitions, packet-fault windows), keyed
    /// `(time, schedule seq)`; applied between epochs.
    global_faults: BTreeMap<(SimTime, u64), Fault>,
    gseq: u64,
    workers: usize,
    shards: Option<usize>,
    topo_cache: Option<TopoCache>,
}

impl ShardedSim {
    /// A sharded simulator with the given RNG root seed and the paper's
    /// clock profile. Defaults to one worker — parallelism is opt-in.
    pub fn new(seed: u64) -> ShardedSim {
        ShardedSim::with_clock_profile(seed, ClockProfile::paper())
    }

    /// A sharded simulator whose nodes all use `profile` for clocks.
    pub fn with_clock_profile(seed: u64, profile: ClockProfile) -> ShardedSim {
        ShardedSim {
            seed,
            now: SimTime::ZERO,
            lps: Vec::new(),
            network: Arc::new(NetworkModel::new()),
            clock_profile: profile,
            packet_faults: PacketFaults::none(),
            global_faults: BTreeMap::new(),
            gseq: 0,
            workers: 1,
            shards: None,
            topo_cache: None,
        }
    }

    /// Sets the worker-thread count (≥ 1). Results are identical for
    /// every value; only wall time changes.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Pins the executor-group count independently of the worker count
    /// (by default one group per worker). Results are identical for
    /// every value.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = Some(shards.max(1));
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Current (coordinator) virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Aggregated traffic counters, folded over LPs in node order.
    pub fn stats(&self) -> NetStats {
        let mut total = NetStats::default();
        for lp in &self.lps {
            total.merge(&lp.stats);
        }
        total
    }

    /// Events processed since construction, summed over LPs.
    pub fn events_processed(&self) -> u64 {
        self.lps.iter().map(|lp| lp.events_processed).sum()
    }

    /// The run digest: an FNV-1a fold, in node order, of every LP's
    /// event-stream digest and event count. Byte-identical across
    /// worker and shard counts; the determinism gate in
    /// `tools/bench.sh shards` compares exactly this value.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for lp in &self.lps {
            mix(&mut h, lp.id.0 as u64);
            mix(&mut h, lp.events_processed);
            mix(&mut h, lp.digest);
        }
        h
    }

    /// The static network model (latencies, partitions, groups).
    /// Coordinator-time only; epochs snapshot it immutably. Handing out
    /// the mutable borrow drops the cached plan/lookahead — the caller
    /// may be about to change what they are derived from.
    pub fn network_mut(&mut self) -> &mut NetworkModel {
        self.topo_cache = None;
        Arc::make_mut(&mut self.network)
    }

    /// Read-only network model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Adds a node running `actor` in `realm`.
    pub fn add_node(&mut self, name: &str, realm: RealmId, actor: Box<dyn Actor>) -> NodeId {
        let profile = self.clock_profile;
        self.add_node_with_clock(name, realm, profile, actor)
    }

    /// Adds a node with an explicit clock profile. The node's clock is
    /// sampled from its *own* RNG stream (first draws), so it is a pure
    /// function of (seed, node id) — not of insertion interleaving with
    /// other nodes' traffic, and not of worker count.
    pub fn add_node_with_clock(
        &mut self,
        name: &str,
        realm: RealmId,
        profile: ClockProfile,
        actor: Box<dyn Actor>,
    ) -> NodeId {
        let id = NodeId(self.lps.len() as u32);
        self.topo_cache = None;
        let mut rng = StdRng::seed_from_u64(self.seed ^ id.0 as u64);
        let clock = profile.sample(self.now, &mut rng);
        let sync_at = clock.sync_at;
        Arc::make_mut(&mut self.network).register_node(id, realm);
        let mut lp = Lp::new(id, name, realm, clock, rng);
        lp.now = self.now;
        lp.actor = Some(actor);
        let now = self.now;
        lp.enqueue(now, LpEvent::Start);
        lp.enqueue(sync_at, LpEvent::ClockSync);
        self.lps.push(lp);
        id
    }

    /// Human-readable node name.
    pub fn node_name(&self, node: NodeId) -> &str {
        self.lps.get(node.0 as usize).map_or("?", |lp| lp.name.as_str())
    }

    /// The node's UTC estimate right now (what its protocol code sees).
    pub fn utc_of(&self, node: NodeId) -> Option<u64> {
        self.lps.get(node.0 as usize).map(|lp| lp.clock.utc_micros(self.now))
    }

    /// Immutable access to a node's actor, downcast to `T`.
    pub fn actor<T: 'static>(&self, node: NodeId) -> Option<&T> {
        self.lps.get(node.0 as usize)?.actor.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Mutable access to a node's actor, downcast to `T`.
    pub fn actor_mut<T: 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.lps.get_mut(node.0 as usize)?.actor.as_mut()?.as_any_mut().downcast_mut::<T>()
    }

    /// Immutable access to a node's actor as a trait object.
    pub fn actor_dyn(&self, node: NodeId) -> Option<&dyn Actor> {
        self.lps.get(node.0 as usize)?.actor.as_deref()
    }

    /// Mutable access to a node's actor as a trait object.
    pub fn actor_dyn_mut(&mut self, node: NodeId) -> Option<&mut dyn Actor> {
        match self.lps.get_mut(node.0 as usize) {
            Some(lp) => match lp.actor.as_mut() {
                Some(actor) => Some(actor.as_mut()),
                None => None,
            },
            None => None,
        }
    }

    /// Whether the node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.lps.get(node.0 as usize).is_some_and(|lp| lp.up)
    }

    /// Marks a node down immediately (coordinator time).
    pub fn crash(&mut self, node: NodeId) {
        for lp in &mut self.lps {
            if lp.id != node {
                lp.streams.reset_node(node);
                lp.wires.reset_node(node);
            }
        }
        if let Some(lp) = self.lps.get_mut(node.0 as usize) {
            lp.up = false;
            for slot in &mut lp.timers {
                slot.1 += 1;
            }
            lp.streams.reset_node(node);
            lp.wires.reset_node(node);
        }
    }

    /// Revives a crashed node and re-runs its `on_start`.
    pub fn revive(&mut self, node: NodeId) {
        let now = self.now;
        if let Some(lp) = self.lps.get_mut(node.0 as usize) {
            lp.up = true;
            lp.enqueue(now, LpEvent::Start);
        }
    }

    /// Registers the factory that rebuilds `node`'s actor on a lossy
    /// restart.
    pub fn set_respawn(&mut self, node: NodeId, factory: ShardRespawnFn) {
        if let Some(lp) = self.lps.get_mut(node.0 as usize) {
            lp.respawn = Some(factory);
        }
    }

    /// Restarts a node: crash (if still up) then revive; with
    /// `lose_state` the actor is rebuilt from its respawn factory.
    pub fn restart(&mut self, node: NodeId, lose_state: bool) {
        if self.is_up(node) {
            self.crash(node);
        }
        if lose_state {
            if let Some(lp) = self.lps.get_mut(node.0 as usize) {
                if let Some(factory) = lp.respawn.as_mut() {
                    lp.actor = Some(factory());
                }
            }
        }
        self.revive(node);
    }

    /// Queues every fault in `plan`, offset from the current virtual
    /// time. Node-scoped faults land in the owning node's shard queue;
    /// globally-scoped ones go to the coordinator's schedule.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for ev in plan.events() {
            let at = self.now + ev.at;
            self.schedule_fault_at(at, ev.fault.clone());
        }
    }

    /// Queues a single fault after `delay`.
    pub fn schedule_fault(&mut self, delay: Duration, fault: Fault) {
        let at = self.now + delay;
        self.schedule_fault_at(at, fault);
    }

    fn schedule_fault_at(&mut self, at: SimTime, fault: Fault) {
        match fault {
            Fault::Crash { node }
            | Fault::Restart { node, .. }
            | Fault::Stall { node, .. }
            | Fault::ClockStep { node, .. } => {
                if let Some(lp) = self.lps.get_mut(node.0 as usize) {
                    lp.enqueue(at, LpEvent::Fault { fault });
                }
            }
            _ => {
                self.global_faults.insert((at, self.gseq), fault);
                self.gseq += 1;
            }
        }
    }

    fn apply_global_fault(&mut self, fault: Fault) {
        match fault {
            Fault::Partition { a, b } => Arc::make_mut(&mut self.network).partition(a, b),
            Fault::Heal { a, b } => Arc::make_mut(&mut self.network).heal(a, b),
            Fault::PartitionOneWay { from, to } => {
                Arc::make_mut(&mut self.network).partition_one_way(from, to);
            }
            Fault::HealOneWay { from, to } => {
                Arc::make_mut(&mut self.network).heal_one_way(from, to);
            }
            Fault::SetPacketFaults { faults } => self.packet_faults = faults,
            Fault::ClearPacketFaults => self.packet_faults = PacketFaults::none(),
            // Node-scoped faults are routed to LP queues at scheduling
            // time and never reach here.
            _ => {}
        }
    }

    /// Sets the per-datagram fault probabilities immediately.
    pub fn set_packet_faults(&mut self, faults: PacketFaults) {
        self.packet_faults = faults;
    }

    /// Enables or disables multicast delivery network-wide.
    pub fn set_multicast_enabled(&mut self, enabled: bool) {
        Arc::make_mut(&mut self.network).multicast_enabled = enabled;
    }

    /// Queues an [`Incoming`] for delivery to `node` after `delay`.
    pub fn inject(&mut self, node: NodeId, delay: Duration, incoming: Incoming) {
        let at = self.now + delay;
        if let Some(lp) = self.lps.get_mut(node.0 as usize) {
            lp.enqueue(at, LpEvent::Inject { incoming });
        }
    }

    /// Runs for `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Runs until virtual time reaches `deadline`, processing every
    /// event scheduled at or before it, epoch by epoch.
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.lps.is_empty() {
            // Still consume due global faults so schedules don't leak
            // across runs, then advance time.
            while let Some((&key, _)) = self.global_faults.iter().next() {
                if key.0 > deadline {
                    break;
                }
                let fault = self.global_faults.remove(&key).expect("keyed");
                if self.now < key.0 {
                    self.now = key.0;
                }
                self.apply_global_fault(fault);
            }
            if self.now < deadline {
                self.now = deadline;
            }
            return;
        }
        let n = self.lps.len();
        let shard_count = self.shards.unwrap_or(self.workers).clamp(1, n);
        let cache_ok = self
            .topo_cache
            .as_ref()
            .is_some_and(|c| c.nodes == n && c.shards == shard_count);
        if !cache_ok {
            self.topo_cache = Some(TopoCache {
                plan: ShardPlan::partition(&self.network, n, shard_count),
                lookahead: self.network.min_cross_node_latency().max(Duration::from_nanos(1)),
                nodes: n,
                shards: shard_count,
            });
        }
        let cache = self.topo_cache.as_ref().expect("just ensured");
        let lookahead = cache.lookahead;
        let plan_shards = cache.plan.shards;
        let assignment = cache.plan.assignment.clone();

        // Deal the LPs out to their executor groups. `index[node]` maps
        // back to `(group, slot)` for the barrier's node-order walks.
        let mut groups: Vec<Vec<Lp>> = (0..plan_shards).map(|_| Vec::new()).collect();
        let mut index = vec![(0usize, 0usize); n];
        for (node, lp) in self.lps.drain(..).enumerate() {
            let g = assignment[node];
            index[node] = (g, groups[g].len());
            groups[g].push(lp);
        }

        // The peek heap: one entry per (next-event time, node), seeded
        // from every LP head and refreshed after each epoch. Entries go
        // stale when the LP consumes or re-times its head; staleness is
        // detected lazily on pop by comparing against the true head, so
        // finding the next horizon and the epoch's active set costs
        // O(active · log n) instead of an O(n) sweep per epoch.
        let mut peeks: BinaryHeap<std::cmp::Reverse<(SimTime, u32)>> = BinaryHeap::with_capacity(n);
        for group in &groups {
            for lp in group {
                if let Some(q) = lp.queue.peek() {
                    peeks.push(std::cmp::Reverse((q.at, lp.id.0)));
                }
            }
        }
        let mut active: Vec<u32> = Vec::new();
        let mut stamp: Vec<u64> = vec![0; n];
        let mut epoch: u64 = 0;

        let workers = self.workers.min(plan_shards).max(1);
        if workers == 1 {
            loop {
                epoch += 1;
                let Some(horizon) = self.next_active_epoch(
                    &groups, &index, &mut peeks, deadline, lookahead, &mut active, &mut stamp,
                    epoch,
                ) else {
                    break;
                };
                for &node in &active {
                    let (g, s) = index[node as usize];
                    let lp = &mut groups[g][s];
                    lp.process_until(horizon, &self.network, self.packet_faults);
                    if let Some(q) = lp.queue.peek() {
                        peeks.push(std::cmp::Reverse((q.at, node)));
                    }
                }
                self.barrier(&mut groups, &index, &active, &mut peeks);
                let reached = if horizon < deadline { horizon } else { deadline };
                if self.now < reached {
                    self.now = reached;
                }
            }
        } else {
            self.run_epochs_threaded(
                &mut groups, &index, deadline, lookahead, workers, &mut peeks, &mut active,
                &mut stamp, &mut epoch,
            );
        }

        // Put the LPs back in node order and let their local clocks
        // catch up to the coordinator's.
        let mut slots: Vec<Option<Lp>> = (0..n).map(|_| None).collect();
        for group in groups {
            for lp in group {
                let i = lp.id.0 as usize;
                slots[i] = Some(lp);
            }
        }
        self.lps = slots.into_iter().map(|s| s.expect("every LP returns")).collect();
        if self.now < deadline {
            self.now = deadline;
        }
        for lp in &mut self.lps {
            if lp.now < self.now {
                lp.now = self.now;
            }
        }
    }

    /// Computes the next epoch's safe horizon, applying due global
    /// faults first. Returns `None` when nothing remains at or before
    /// `deadline`.
    ///
    /// Safety sketch: let `m` be the earliest pending event anywhere
    /// and `L` the lookahead. Any event executing at `t ∈ [m, H)` with
    /// `H = m + L` can only schedule a cross-LP delivery at
    /// `t + spec.latency + extras ≥ m + L = H` (wire serialisation
    /// starts no earlier than `t`, jitter and stream setup are
    /// non-negative), so no delivery merged at the barrier lands inside
    /// the epoch that produced it. The horizon additionally never
    /// crosses the next global fault (the model must not change
    /// mid-epoch) nor `deadline` (events *at* the deadline run,
    /// matching `Sim::run_until`, hence the +1 ns).
    /// Finds the next epoch's horizon *and* its active set: the sorted
    /// node ids whose head event lies below the horizon. Entries popped
    /// from the peek heap are validated against the LP's true head —
    /// mismatches are stale leftovers and are simply discarded (the
    /// invariant that every non-empty LP keeps one matching entry is
    /// maintained by the post-process and barrier re-pushes). `stamp`
    /// de-duplicates multiple valid entries for one node within an
    /// epoch.
    #[allow(clippy::too_many_arguments)]
    fn next_active_epoch(
        &mut self,
        groups: &[Vec<Lp>],
        index: &[(usize, usize)],
        peeks: &mut BinaryHeap<std::cmp::Reverse<(SimTime, u32)>>,
        deadline: SimTime,
        lookahead: Duration,
        active: &mut Vec<u32>,
        stamp: &mut [u64],
        epoch: u64,
    ) -> Option<SimTime> {
        loop {
            // The earliest true head anywhere: pop stale entries until
            // the top matches its LP's actual head.
            let m = loop {
                match peeks.peek() {
                    None => break None,
                    Some(&std::cmp::Reverse((t, node))) => {
                        let (g, s) = index[node as usize];
                        if groups[g][s].queue.peek().is_some_and(|q| q.at == t) {
                            break Some(t);
                        }
                        peeks.pop();
                    }
                }
            };
            if let Some((&key, _)) = self.global_faults.iter().next() {
                let due = m.is_none_or(|m| key.0 <= m);
                if due && key.0 <= deadline {
                    let fault = self.global_faults.remove(&key).expect("keyed");
                    if self.now < key.0 {
                        self.now = key.0;
                    }
                    self.apply_global_fault(fault);
                    continue;
                }
            }
            let m = m?;
            if m > deadline {
                return None;
            }
            let mut horizon = m + lookahead;
            if let Some((&(at, _), _)) = self.global_faults.iter().next() {
                if at < horizon {
                    horizon = at;
                }
            }
            let cap = deadline + Duration::from_nanos(1);
            if cap < horizon {
                horizon = cap;
            }
            // Drain every heap entry below the horizon; the valid ones
            // name exactly the LPs with work this epoch.
            active.clear();
            while let Some(&std::cmp::Reverse((t, node))) = peeks.peek() {
                if t >= horizon {
                    break;
                }
                peeks.pop();
                let (g, s) = index[node as usize];
                let valid = groups[g][s].queue.peek().is_some_and(|q| q.at == t);
                if valid && stamp[node as usize] != epoch {
                    stamp[node as usize] = epoch;
                    active.push(node);
                }
            }
            active.sort_unstable();
            return Some(horizon);
        }
    }

    /// The epoch barrier: applies deferred network ops, then merges
    /// every outbox into its destination queue — both in ascending node
    /// order, so sequence assignment is a pure function of the event
    /// streams themselves. Only the epoch's active LPs are walked: an LP
    /// that processed nothing since the last barrier has an empty outbox
    /// and no deferred ops, and `active` is sorted, so the walk order is
    /// exactly the historical full 0..n ascending sweep minus its
    /// no-ops. Merged deliveries are mirrored into the peek heap to keep
    /// its head-tracking invariant.
    fn barrier(
        &mut self,
        groups: &mut [Vec<Lp>],
        index: &[(usize, usize)],
        active: &[u32],
        peeks: &mut BinaryHeap<std::cmp::Reverse<(SimTime, u32)>>,
    ) {
        let mut ops: Vec<(NodeId, DeferredOp)> = Vec::new();
        for &node in active {
            let (g, i) = index[node as usize];
            for op in groups[g][i].ops.drain(..) {
                ops.push((NodeId(node), op));
            }
        }
        for (node, op) in ops {
            match op {
                DeferredOp::Join(group) => {
                    Arc::make_mut(&mut self.network).join_group(group, node);
                }
                DeferredOp::Leave(group) => {
                    Arc::make_mut(&mut self.network).leave_group(group, node);
                }
                DeferredOp::ResetPeer => {
                    for g in groups.iter_mut() {
                        for lp in g.iter_mut() {
                            if lp.id != node {
                                lp.streams.reset_node(node);
                                lp.wires.reset_node(node);
                            }
                        }
                    }
                }
            }
        }
        for &node in active {
            let (g, i) = index[node as usize];
            let outbox = std::mem::take(&mut groups[g][i].outbox);
            for m in outbox {
                let dest = m.to.node.0 as usize;
                let (dg, di) = index[dest];
                peeks.push(std::cmp::Reverse((m.at, dest as u32)));
                groups[dg][di].enqueue(
                    m.at,
                    LpEvent::Deliver {
                        from: m.from,
                        to_port: m.to.port,
                        msg: m.msg,
                        len: m.len,
                        stream: m.stream,
                    },
                );
            }
        }
    }

    /// The worker-pool epoch loop. Whole LP groups travel through
    /// channels: a worker owns the group for the duration of one epoch
    /// and hands it back, so there is no shared mutable state at all —
    /// the coordinator is the only thread alive at every barrier.
    #[allow(clippy::too_many_arguments)]
    fn run_epochs_threaded(
        &mut self,
        groups: &mut Vec<Vec<Lp>>,
        index: &[(usize, usize)],
        deadline: SimTime,
        lookahead: Duration,
        workers: usize,
        peeks: &mut BinaryHeap<std::cmp::Reverse<(SimTime, u32)>>,
        active: &mut Vec<u32>,
        stamp: &mut [u64],
        epoch: &mut u64,
    ) {
        let (task_tx, task_rx) = channel::unbounded::<EpochTask>();
        let (result_tx, result_rx) = channel::unbounded::<(usize, Vec<Lp>, Vec<usize>)>();
        // Per-group active-slot buckets, reused across epochs.
        let mut group_slots: Vec<Vec<usize>> = (0..groups.len()).map(|_| Vec::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let task_rx = task_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok(mut task) = task_rx.recv() {
                        for &slot in &task.active_slots {
                            task.lps[slot].process_until(task.horizon, &task.net, task.pf);
                        }
                        if result_tx.send((task.gidx, task.lps, task.active_slots)).is_err() {
                            break;
                        }
                    }
                });
            }
            loop {
                *epoch += 1;
                let Some(horizon) = self.next_active_epoch(
                    groups, index, peeks, deadline, lookahead, active, stamp, *epoch,
                ) else {
                    break;
                };
                for &node in active.iter() {
                    let (g, s) = index[node as usize];
                    group_slots[g].push(s);
                }
                let mut outstanding = 0usize;
                for (gidx, slots) in group_slots.iter_mut().enumerate() {
                    if slots.is_empty() {
                        continue;
                    }
                    let lps = std::mem::take(&mut groups[gidx]);
                    let sent = task_tx.send(EpochTask {
                        gidx,
                        lps,
                        active_slots: std::mem::take(slots),
                        net: Arc::clone(&self.network),
                        pf: self.packet_faults,
                        horizon,
                    });
                    assert!(sent.is_ok(), "workers outlive the epoch loop");
                    outstanding += 1;
                }
                for _ in 0..outstanding {
                    let (gidx, lps, slots) = result_rx.recv().expect("worker returns its group");
                    groups[gidx] = lps;
                    for slot in slots {
                        let lp = &groups[gidx][slot];
                        if let Some(q) = lp.queue.peek() {
                            peeks.push(std::cmp::Reverse((q.at, lp.id.0)));
                        }
                    }
                }
                let act = std::mem::take(active);
                self.barrier(groups, index, &act, peeks);
                *active = act;
                let reached = if horizon < deadline { horizon } else { deadline };
                if self.now < reached {
                    self.now = reached;
                }
            }
            drop(task_tx);
        });
    }
}

/// The engine surface scenario builders program against, so one
/// topology-construction path can target both the reference serial
/// engine and the sharded engine (`crates/core`'s `ScenarioBuilder`
/// builds through this trait).
pub trait DiscoveryEngine {
    /// Adds a node running `actor` in `realm`.
    fn add_node(&mut self, name: &str, realm: RealmId, actor: Box<dyn Actor>) -> NodeId;
    /// The mutable network model (coordinator time).
    fn network_mut(&mut self) -> &mut NetworkModel;
    /// Registers a lossy-restart respawn factory. `Send` is required so
    /// the factory can live inside a migrating LP; for `Sim` it simply
    /// coerces away.
    fn set_respawn_factory(&mut self, node: NodeId, factory: ShardRespawnFn);
    /// A node's actor as a trait object.
    fn actor_dyn(&self, node: NodeId) -> Option<&dyn Actor>;
    /// Mutable counterpart of [`DiscoveryEngine::actor_dyn`].
    fn actor_dyn_mut(&mut self, node: NodeId) -> Option<&mut dyn Actor>;
    /// Queues an [`Incoming`] for `node` after `delay`.
    fn inject(&mut self, node: NodeId, delay: Duration, incoming: Incoming);
    /// Queues every fault in `plan` relative to the current time.
    fn apply_fault_plan(&mut self, plan: &FaultPlan);
    /// Runs for `d` of virtual time.
    fn run_for(&mut self, d: Duration);
    /// Current virtual time.
    fn now(&self) -> SimTime;
    /// Events processed since construction.
    fn events_processed(&self) -> u64;
}

impl DiscoveryEngine for Sim {
    fn add_node(&mut self, name: &str, realm: RealmId, actor: Box<dyn Actor>) -> NodeId {
        Sim::add_node(self, name, realm, actor)
    }
    fn network_mut(&mut self) -> &mut NetworkModel {
        Sim::network_mut(self)
    }
    fn set_respawn_factory(&mut self, node: NodeId, factory: ShardRespawnFn) {
        Sim::set_respawn(self, node, factory);
    }
    fn actor_dyn(&self, node: NodeId) -> Option<&dyn Actor> {
        Sim::actor_dyn(self, node)
    }
    fn actor_dyn_mut(&mut self, node: NodeId) -> Option<&mut dyn Actor> {
        Sim::actor_dyn_mut(self, node)
    }
    fn inject(&mut self, node: NodeId, delay: Duration, incoming: Incoming) {
        Sim::inject(self, node, delay, incoming);
    }
    fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        Sim::apply_fault_plan(self, plan);
    }
    fn run_for(&mut self, d: Duration) {
        Sim::run_for(self, d);
    }
    fn now(&self) -> SimTime {
        Sim::now(self)
    }
    fn events_processed(&self) -> u64 {
        Sim::events_processed(self)
    }
}

impl DiscoveryEngine for ShardedSim {
    fn add_node(&mut self, name: &str, realm: RealmId, actor: Box<dyn Actor>) -> NodeId {
        ShardedSim::add_node(self, name, realm, actor)
    }
    fn network_mut(&mut self) -> &mut NetworkModel {
        ShardedSim::network_mut(self)
    }
    fn set_respawn_factory(&mut self, node: NodeId, factory: ShardRespawnFn) {
        ShardedSim::set_respawn(self, node, factory);
    }
    fn actor_dyn(&self, node: NodeId) -> Option<&dyn Actor> {
        ShardedSim::actor_dyn(self, node)
    }
    fn actor_dyn_mut(&mut self, node: NodeId) -> Option<&mut dyn Actor> {
        ShardedSim::actor_dyn_mut(self, node)
    }
    fn inject(&mut self, node: NodeId, delay: Duration, incoming: Incoming) {
        ShardedSim::inject(self, node, delay, incoming);
    }
    fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        ShardedSim::apply_fault_plan(self, plan);
    }
    fn run_for(&mut self, d: Duration) {
        ShardedSim::run_for(self, d);
    }
    fn now(&self) -> SimTime {
        ShardedSim::now(self)
    }
    fn events_processed(&self) -> u64 {
        ShardedSim::events_processed(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosProfile, ChaosTargets};
    use crate::impl_actor_any;
    use crate::link::LinkSpec;
    use nb_wire::addr::well_known;
    use std::collections::HashMap;

    /// Echoes every ping as a pong from the same port.
    #[derive(Default)]
    struct Echo {
        pings_seen: u32,
    }

    impl Actor for Echo {
        fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
            if let Incoming::Datagram { to_port, msg, .. } = event {
                if let Message::Ping { nonce, sent_at, reply_to } = *msg.message() {
                    self.pings_seen += 1;
                    let pong =
                        Message::Pong { nonce, echoed_sent_at: sent_at, responder: ctx.me() };
                    ctx.send_udp(to_port, reply_to, &pong);
                }
            }
        }
        impl_actor_any!();
    }

    /// Sends pings on start, records the pong RTTs by its local clock.
    struct Pinger {
        target: NodeId,
        rtts: Vec<Duration>,
        sent: HashMap<u64, SimTime>,
        timer_fired: u32,
    }

    impl Pinger {
        fn new(target: NodeId) -> Pinger {
            Pinger { target, rtts: Vec::new(), sent: HashMap::new(), timer_fired: 0 }
        }
    }

    impl Actor for Pinger {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            for nonce in 0..5u64 {
                let ping = Message::Ping {
                    nonce,
                    sent_at: ctx.now().as_micros(),
                    reply_to: Endpoint::new(ctx.me(), well_known::PING),
                };
                self.sent.insert(nonce, ctx.now());
                ctx.send_udp(well_known::PING, Endpoint::new(self.target, well_known::PING), &ping);
            }
            ctx.set_timer(Duration::from_secs(1), 7);
        }

        fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
            match event {
                Incoming::Datagram { msg, .. } => {
                    if let Message::Pong { nonce, .. } = msg.message() {
                        let sent = self.sent[nonce];
                        self.rtts.push(ctx.now() - sent);
                    }
                }
                Incoming::Timer { token: 7 } => self.timer_fired += 1,
                _ => {}
            }
        }
        impl_actor_any!();
    }

    fn lossless(sim: &mut ShardedSim) {
        sim.network_mut().local_spec = LinkSpec::local().with_loss(0.0);
        sim.network_mut().intra_realm_spec = LinkSpec::lan().with_loss(0.0);
        sim.network_mut().inter_realm_spec =
            LinkSpec::wan(Duration::from_millis(40)).with_loss(0.0);
    }

    /// Three echo/pinger pairs spread over three realms, paper clocks,
    /// a light chaos plan: a workload exercising RNG streams, timers,
    /// faults and cross-realm traffic.
    fn mixed_workload(workers: usize, shards: usize) -> (u64, u64, u64) {
        let mut sim = ShardedSim::new(42);
        sim.set_workers(workers);
        sim.set_shards(shards);
        let mut echoes = Vec::new();
        for i in 0..3u32 {
            let echo = sim.add_node(&format!("echo-{i}"), RealmId(0), Box::new(Echo::default()));
            sim.set_respawn(echo, Box::new(|| Box::new(Echo::default())));
            echoes.push(echo);
        }
        let mut pingers = Vec::new();
        for (i, &echo) in echoes.iter().enumerate() {
            let realm = RealmId(1 + (i as u16 % 2));
            let p = sim.add_node(&format!("pinger-{i}"), realm, Box::new(Pinger::new(echo)));
            pingers.push(p);
        }
        let targets = ChaosTargets { bdns: vec![echoes[0]], brokers: echoes[1..].to_vec(), clients: pingers };
        let plan =
            FaultPlan::generate(42, &ChaosProfile::light(), &targets, Duration::from_secs(6));
        sim.apply_fault_plan(&plan);
        sim.run_for(Duration::from_secs(8));
        (sim.digest(), sim.events_processed(), sim.stats().datagrams_delivered)
    }

    #[test]
    fn digest_invariant_across_workers_and_shards() {
        let reference = mixed_workload(1, 1);
        for (workers, shards) in [(1, 2), (2, 2), (4, 4), (1, 4), (4, 2), (3, 3), (2, 6)] {
            assert_eq!(
                mixed_workload(workers, shards),
                reference,
                "diverged at workers={workers} shards={shards}"
            );
        }
    }

    #[test]
    fn ping_pong_rtt_matches_link_latency() {
        let mut sim = ShardedSim::with_clock_profile(1, ClockProfile::perfect());
        sim.set_workers(2);
        sim.set_shards(2);
        lossless(&mut sim);
        let echo = sim.add_node("echo", RealmId(0), Box::new(Echo::default()));
        let pinger = sim.add_node("pinger", RealmId(1), Box::new(Pinger::new(echo)));
        sim.run_for(Duration::from_secs(2));
        let p: &Pinger = sim.actor(pinger).unwrap();
        assert_eq!(p.rtts.len(), 5);
        let spec = sim.network().inter_realm_spec;
        for rtt in &p.rtts {
            assert!(*rtt >= spec.latency * 2, "rtt {rtt:?}");
            assert!(*rtt <= (spec.latency + spec.jitter) * 2, "rtt {rtt:?}");
        }
        assert_eq!(p.timer_fired, 1);
        let e: &Echo = sim.actor(echo).unwrap();
        assert_eq!(e.pings_seen, 5);
    }

    #[test]
    fn crash_drops_traffic_and_revive_restores() {
        let mut sim = ShardedSim::with_clock_profile(3, ClockProfile::perfect());
        sim.set_workers(2);
        lossless(&mut sim);
        let echo = sim.add_node("echo", RealmId(0), Box::new(Echo::default()));
        let pinger = sim.add_node("pinger", RealmId(0), Box::new(Pinger::new(echo)));
        sim.crash(echo);
        assert!(!sim.is_up(echo));
        sim.run_for(Duration::from_secs(2));
        let p: &Pinger = sim.actor(pinger).unwrap();
        assert!(p.rtts.is_empty());
        assert!(sim.stats().dropped_node_down > 0);
        sim.revive(echo);
        assert!(sim.is_up(echo));
        let pinger2 = sim.add_node("pinger2", RealmId(0), Box::new(Pinger::new(echo)));
        sim.run_for(Duration::from_secs(2));
        let p2: &Pinger = sim.actor(pinger2).unwrap();
        assert_eq!(p2.rtts.len(), 5);
    }

    #[test]
    fn stall_defers_delivery_until_it_ends() {
        let mut sim = ShardedSim::with_clock_profile(4, ClockProfile::perfect());
        sim.set_workers(2);
        sim.set_shards(2);
        lossless(&mut sim);
        let echo = sim.add_node("echo", RealmId(0), Box::new(Echo::default()));
        let pinger = sim.add_node("pinger", RealmId(0), Box::new(Pinger::new(echo)));
        sim.schedule_fault(Duration::ZERO, Fault::Stall { node: echo, dur: Duration::from_secs(3) });
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.actor::<Echo>(echo).unwrap().pings_seen, 0, "stalled node is frozen");
        sim.run_for(Duration::from_secs(4));
        let p: &Pinger = sim.actor(pinger).unwrap();
        assert_eq!(sim.actor::<Echo>(echo).unwrap().pings_seen, 5, "deferred events replay");
        assert_eq!(p.rtts.len(), 5);
        for rtt in &p.rtts {
            assert!(*rtt >= Duration::from_secs(3), "replies waited out the stall: {rtt:?}");
        }
    }

    #[test]
    fn lossy_restart_rebuilds_actor_from_respawn_factory() {
        let mut sim = ShardedSim::with_clock_profile(9, ClockProfile::perfect());
        lossless(&mut sim);
        let echo = sim.add_node("echo", RealmId(0), Box::new(Echo::default()));
        sim.set_respawn(echo, Box::new(|| Box::new(Echo::default())));
        sim.add_node("pinger", RealmId(0), Box::new(Pinger::new(echo)));
        sim.run_for(Duration::from_secs(2));
        assert_eq!(sim.actor::<Echo>(echo).unwrap().pings_seen, 5);
        sim.restart(echo, false);
        assert_eq!(sim.actor::<Echo>(echo).unwrap().pings_seen, 5);
        sim.restart(echo, true);
        assert_eq!(sim.actor::<Echo>(echo).unwrap().pings_seen, 0);
        sim.run_for(Duration::from_secs(1));
        let pinger2 = sim.add_node("pinger2", RealmId(0), Box::new(Pinger::new(echo)));
        sim.run_for(Duration::from_secs(2));
        assert_eq!(sim.actor::<Pinger>(pinger2).unwrap().rtts.len(), 5);
    }

    #[test]
    fn packet_fault_window_via_global_fault_is_deterministic() {
        let run = |workers: usize| {
            let mut sim = ShardedSim::with_clock_profile(6, ClockProfile::perfect());
            sim.set_workers(workers);
            sim.set_shards(4);
            lossless(&mut sim);
            let echo = sim.add_node("echo", RealmId(0), Box::new(Echo::default()));
            sim.add_node("pinger", RealmId(1), Box::new(Pinger::new(echo)));
            sim.schedule_fault(
                Duration::ZERO,
                Fault::SetPacketFaults { faults: PacketFaults::unruly() },
            );
            sim.schedule_fault(Duration::from_secs(1), Fault::ClearPacketFaults);
            sim.run_for(Duration::from_secs(3));
            (sim.digest(), sim.events_processed())
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn shard_plan_co_locates_chatty_pairs_and_balances() {
        let mut net = NetworkModel::new();
        for i in 0..4u32 {
            net.register_node(NodeId(i), RealmId(i as u16));
        }
        // Nodes 0 and 3 sit behind the same fast link.
        net.set_link(NodeId(0), NodeId(3), LinkSpec::local());
        let plan = ShardPlan::partition(&net, 4, 2);
        assert_eq!(plan, ShardPlan::partition(&net, 4, 2), "plan is deterministic");
        assert_eq!(plan.assignment[0], plan.assignment[3], "chatty pair co-locates");
        for g in 0..2 {
            let size = plan.assignment.iter().filter(|&&a| a == g).count();
            assert!(size <= 2, "group {g} holds {size} > cap");
        }
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut sim = ShardedSim::new(0);
        sim.add_node("idle", RealmId(0), Box::new(crate::runtime::IdleActor));
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(sim.now(), SimTime::from_secs(30));
    }

    #[test]
    fn multicast_joins_visible_after_barrier() {
        /// Joins a group on start; multicasts into it after 100 ms.
        struct Caster {
            group: GroupId,
            heard: u32,
        }
        impl Actor for Caster {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                ctx.join_group(self.group);
                ctx.set_timer(Duration::from_millis(100), 1);
            }
            fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
                match event {
                    Incoming::Timer { token: 1 } => {
                        let ping = Message::Ping {
                            nonce: ctx.me().0 as u64,
                            sent_at: 0,
                            reply_to: Endpoint::new(ctx.me(), well_known::PING),
                        };
                        ctx.send_multicast(well_known::PING, self.group, well_known::PING, &ping);
                    }
                    Incoming::Datagram { .. } => self.heard += 1,
                    _ => {}
                }
            }
            impl_actor_any!();
        }
        let group = GroupId(7);
        let mut sim = ShardedSim::with_clock_profile(8, ClockProfile::perfect());
        sim.set_workers(2);
        lossless(&mut sim);
        sim.set_multicast_enabled(true);
        let a = sim.add_node("a", RealmId(0), Box::new(Caster { group, heard: 0 }));
        let b = sim.add_node("b", RealmId(0), Box::new(Caster { group, heard: 0 }));
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.actor::<Caster>(a).unwrap().heard, 1);
        assert_eq!(sim.actor::<Caster>(b).unwrap().heard, 1);
    }
}

//! Property-based tests for the network substrate: time arithmetic,
//! link-model bounds, stream ordering, multicast scoping and clock
//! residuals.

use std::time::Duration;

use proptest::prelude::*;

use nb_net::clock::ClockProfile;
use nb_net::link::{DatagramFate, LinkSpec, NetworkModel, StreamBook};
use nb_net::{ChaosProfile, ChaosTargets, FaultPlan};
use nb_net::time::{true_utc_micros, SimTime};
use nb_wire::{Endpoint, GroupId, NodeId, Port, RealmId};

use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn simtime_add_then_subtract_roundtrips(base in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(base);
        let d = Duration::from_nanos(delta);
        let later = t + d;
        prop_assert_eq!(later - t, d);
        prop_assert!(later >= t);
    }

    #[test]
    fn simtime_offset_roundtrips_when_in_range(
        base in 1_000_000_000u64..u64::MAX / 4,
        off in -1_000_000i64..1_000_000i64,
    ) {
        let t = SimTime::from_nanos(base);
        prop_assert_eq!(t.offset_by(off).offset_by(-off), t);
    }

    #[test]
    fn true_utc_is_monotonic(a in 0u64..u64::MAX / 8, b in 0u64..u64::MAX / 8) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(true_utc_micros(SimTime::from_nanos(lo)) <= true_utc_micros(SimTime::from_nanos(hi)));
    }

    #[test]
    fn latency_samples_stay_within_spec(
        base_us in 1u64..200_000,
        jitter_us in 0u64..50_000,
        seed in any::<u64>(),
    ) {
        let spec = LinkSpec {
            latency: Duration::from_micros(base_us),
            jitter: Duration::from_micros(jitter_us),
            loss: 0.0,
            bandwidth: None,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let l = spec.sample_latency(&mut rng);
            prop_assert!(l >= spec.latency);
            prop_assert!(l <= spec.latency + spec.jitter);
        }
    }

    #[test]
    fn zero_loss_never_drops_and_full_loss_always_drops(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let never = LinkSpec::local().with_loss(0.0);
        let always = LinkSpec::local().with_loss(1.0);
        for _ in 0..100 {
            prop_assert!(!never.sample_loss(&mut rng));
            prop_assert!(always.sample_loss(&mut rng));
        }
    }

    #[test]
    fn stream_book_never_reorders_a_direction(
        sends in prop::collection::vec((0u64..2_000_000, 0u64..100_000), 1..60),
    ) {
        // Arbitrary (send-time-advance, sampled-latency) sequences must
        // produce non-decreasing arrival times per direction.
        let mut book = StreamBook::new();
        let from = Endpoint::new(NodeId(1), Port(1));
        let to = Endpoint::new(NodeId(2), Port(2));
        let mut now = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        for (advance_us, lat_us) in sends {
            now += Duration::from_micros(advance_us);
            let arrival = book.delivery_time(from, to, now, Duration::from_micros(lat_us));
            prop_assert!(arrival >= last_arrival, "reordered: {arrival:?} < {last_arrival:?}");
            prop_assert!(arrival >= now);
            last_arrival = arrival;
        }
    }

    #[test]
    fn multicast_recipients_are_same_realm_group_members(
        realms in prop::collection::vec(0u16..4, 2..30),
        members in prop::collection::vec(any::<prop::sample::Index>(), 0..30),
        sender_idx in any::<prop::sample::Index>(),
    ) {
        let mut net = NetworkModel::new();
        let n = realms.len();
        for (i, &r) in realms.iter().enumerate() {
            net.register_node(NodeId(i as u32), RealmId(r));
        }
        let group = GroupId(5);
        for idx in &members {
            net.join_group(group, NodeId(idx.index(n) as u32));
        }
        let sender = NodeId(sender_idx.index(n) as u32);
        let got = net.multicast_recipients(group, sender);
        let sender_realm = net.realm_of(sender).unwrap();
        for r in &got {
            prop_assert_ne!(*r, sender, "sender never receives its own cast");
            prop_assert_eq!(net.realm_of(*r), Some(sender_realm), "realm-scoped");
        }
        // Sorted and unique.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(got, sorted);
    }

    #[test]
    fn partition_makes_both_directions_unreachable(
        a in 0u32..10, b in 0u32..10, seed in any::<u64>(),
    ) {
        prop_assume!(a != b);
        let mut net = NetworkModel::new();
        for i in 0..10 {
            net.register_node(NodeId(i), RealmId(0));
        }
        net.partition(NodeId(a), NodeId(b));
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(net.datagram_fate(NodeId(a), NodeId(b), &mut rng), DatagramFate::Unreachable);
        prop_assert_eq!(net.datagram_fate(NodeId(b), NodeId(a), &mut rng), DatagramFate::Unreachable);
        net.heal(NodeId(a), NodeId(b));
        prop_assert!(net.spec_between(NodeId(a), NodeId(b)).is_some());
    }

    #[test]
    fn one_way_partition_blocks_exactly_one_direction(
        a in 0u32..10, b in 0u32..10, seed in any::<u64>(),
    ) {
        prop_assume!(a != b);
        let mut net = NetworkModel::new();
        for i in 0..10 {
            net.register_node(NodeId(i), RealmId(0));
        }
        net.partition_one_way(NodeId(a), NodeId(b));
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(
            net.datagram_fate(NodeId(a), NodeId(b), &mut rng),
            DatagramFate::Unreachable
        );
        prop_assert!(net.spec_between(NodeId(b), NodeId(a)).is_some(), "reverse stays open");
        prop_assert!(net.path_blocked(NodeId(a), NodeId(b)));
        prop_assert!(!net.path_blocked(NodeId(b), NodeId(a)));
        net.heal_one_way(NodeId(a), NodeId(b));
        prop_assert!(net.spec_between(NodeId(a), NodeId(b)).is_some());
    }

    #[test]
    fn fault_plans_are_pure_functions_of_their_seed(
        seed in any::<u64>(),
        horizon_s in 20u64..300,
        heavy in any::<bool>(),
    ) {
        let profile = if heavy { ChaosProfile::heavy() } else { ChaosProfile::light() };
        let targets = ChaosTargets {
            bdns: vec![NodeId(0)],
            brokers: (1..5).map(NodeId).collect(),
            clients: vec![NodeId(5), NodeId(6)],
        };
        let horizon = Duration::from_secs(horizon_s);
        let p1 = FaultPlan::generate(seed, &profile, &targets, horizon);
        let p2 = FaultPlan::generate(seed, &profile, &targets, horizon);
        prop_assert_eq!(p1.describe(), p2.describe(), "same seed must reproduce the plan");
        prop_assert!(!p1.is_empty());
        let times: Vec<_> = p1.events().iter().map(|e| e.at).collect();
        let mut sorted = times.clone();
        sorted.sort();
        prop_assert_eq!(times, sorted, "plans are time-sorted");
    }

    #[test]
    fn clock_residuals_respect_the_profile(seed in any::<u64>()) {
        let profile = ClockProfile::paper();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = profile.sample(SimTime::ZERO, &mut rng);
        let residual = c.residual_ns().unsigned_abs();
        prop_assert!((1_000_000..=20_000_000).contains(&residual));
        // Post-sync UTC error equals the residual (to µs rounding).
        let mut synced = c;
        synced.mark_synced();
        let now = SimTime::from_secs(100);
        let err = (synced.utc_micros(now) as i64 - true_utc_micros(now) as i64).unsigned_abs();
        prop_assert!(err.abs_diff(residual / 1_000) <= 2, "err {err} vs residual {}", residual / 1_000);
    }
}

mod bandwidth_end_to_end {
    use std::time::Duration;

    use nb_net::{impl_actor_any, Actor, ClockProfile, Context, Incoming, LinkSpec, Sim, SimTime};
    use nb_util::Uuid;
    use nb_wire::{Endpoint, Event, Message, NodeId, Port, RealmId, Topic};

    #[derive(Default)]
    struct Recorder {
        arrivals: Vec<(&'static str, SimTime)>,
    }
    impl Actor for Recorder {
        fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
            if let Incoming::Datagram { msg, .. } = event {
                self.arrivals.push((msg.kind(), ctx.now()));
            }
        }
        impl_actor_any!();
    }

    struct Sender {
        peer: NodeId,
    }
    impl Actor for Sender {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            // A 125 KB event first (100 ms of serialisation at 1.25 MB/s),
            // then a tiny ping: the ping queues behind the bulk transfer.
            let bulk = Message::Publish(Event {
                id: Uuid::from_u128(1),
                topic: Topic::parse("bulk").unwrap(),
                source: ctx.me(),
                payload: vec![0u8; 125_000].into(),
            });
            ctx.send_udp(Port(1), Endpoint::new(self.peer, Port(1)), &bulk);
            let ping = Message::Ping {
                nonce: 1,
                sent_at: 0,
                reply_to: Endpoint::new(ctx.me(), Port(1)),
            };
            ctx.send_udp(Port(1), Endpoint::new(self.peer, Port(1)), &ping);
        }
        fn on_incoming(&mut self, _event: Incoming, _ctx: &mut dyn Context) {}
        impl_actor_any!();
    }

    #[test]
    fn bulk_traffic_delays_messages_queued_behind_it() {
        let mut sim = Sim::with_clock_profile(5, ClockProfile::perfect());
        sim.network_mut().inter_realm_spec = LinkSpec::wan(Duration::from_millis(10))
            .with_loss(0.0)
            .with_jitter(Duration::ZERO);
        let rx = sim.add_node("rx", RealmId(0), Box::new(Recorder::default()));
        sim.add_node("tx", RealmId(1), Box::new(Sender { peer: rx }));
        sim.run_for(Duration::from_secs(2));
        let rec = sim.actor::<Recorder>(rx).unwrap();
        assert_eq!(rec.arrivals.len(), 2);
        let bulk_at = rec.arrivals.iter().find(|(k, _)| *k == "publish").unwrap().1;
        let ping_at = rec.arrivals.iter().find(|(k, _)| *k == "ping").unwrap().1;
        // Bulk: 100 ms serialisation + 10 ms propagation.
        assert_eq!(bulk_at.as_millis(), 110);
        // The ping queued behind the bulk transfer: ~100 ms + tiny tx + 10 ms.
        assert!(ping_at > bulk_at, "ping {ping_at} must queue behind bulk {bulk_at}");
        assert!(ping_at.as_millis() <= 115, "ping {ping_at} only pays queueing, not more");
    }
}

//! Property tests for the WAN topology generators (`nb_net::topogen`):
//! seed determinism, connectivity, install accounting, and — the
//! property the scale campaign's byte-identity gate rests on — engine
//! digest equality across worker counts over generated topologies.

use std::time::Duration;

use nb_net::topogen::{TopologyKind, TopologySpec};
use nb_net::{impl_actor_any, Actor, ClockProfile, Context, Incoming, ShardedSim};
use nb_wire::{Endpoint, Message, NodeId, Port, RealmId};
use proptest::prelude::*;

const KINDS: [TopologyKind; 4] = [
    TopologyKind::Star,
    TopologyKind::Linear,
    TopologyKind::RandomGeometric,
    TopologyKind::HierarchicalIsp,
];

fn kind_strategy() -> impl Strategy<Value = TopologyKind> {
    (0usize..KINDS.len()).prop_map(|i| KINDS[i])
}

proptest! {
    /// Same `(kind, brokers, seed)` → the same topology, byte for byte
    /// (witnessed by the digest); generation is a pure function.
    #[test]
    fn generation_is_seed_deterministic(
        kind in kind_strategy(),
        brokers in 2usize..150,
        seed in any::<u64>(),
    ) {
        let a = TopologySpec::new(kind, brokers, seed).generate();
        let b = TopologySpec::new(kind, brokers, seed).generate();
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.edges.len(), b.edges.len());
        prop_assert_eq!(&a.region_of, &b.region_of);
    }

    /// The randomized families actually consume the seed: two seeds
    /// give two different geometries (the degenerate star/linear shapes
    /// are deliberately seed-independent).
    #[test]
    fn randomized_families_consume_the_seed(
        randomized in any::<bool>(),
        brokers in 20usize..150,
        seed in 0u64..u64::MAX - 1,
    ) {
        let kind = if randomized {
            TopologyKind::RandomGeometric
        } else {
            TopologyKind::HierarchicalIsp
        };
        let a = TopologySpec::new(kind, brokers, seed).generate();
        let b = TopologySpec::new(kind, brokers, seed + 1).generate();
        prop_assert_ne!(a.digest(), b.digest());
    }

    /// Every generated topology is one connected component — the flood
    /// injection proof (`repro scale` attach) needs a path between any
    /// broker pair.
    #[test]
    fn every_family_generates_connected_topologies(
        kind in kind_strategy(),
        brokers in 2usize..150,
        seed in any::<u64>(),
    ) {
        let topo = TopologySpec::new(kind, brokers, seed).generate();
        prop_assert_eq!(topo.brokers(), brokers);
        prop_assert_eq!(topo.components(), 1, "{:?} seed {} split", kind, seed);
    }

    /// Region bookkeeping: every broker is placed in a valid region and
    /// every region is populated (regions scale at one per 50 brokers).
    #[test]
    fn regions_are_dense_and_in_bounds(
        kind in kind_strategy(),
        brokers in 2usize..150,
        seed in any::<u64>(),
    ) {
        let topo = TopologySpec::new(kind, brokers, seed).generate();
        prop_assert_eq!(topo.region_of.len(), brokers);
        prop_assert!(topo.regions >= 1);
        let mut seen = vec![false; topo.regions];
        for &r in &topo.region_of {
            prop_assert!(r < topo.regions);
            seen[r] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "empty region");
    }

    /// Edge endpoints index real brokers and no edge is a self-loop.
    #[test]
    fn edges_index_real_brokers(
        kind in kind_strategy(),
        brokers in 2usize..150,
        seed in any::<u64>(),
    ) {
        let topo = TopologySpec::new(kind, brokers, seed).generate();
        for &(a, b, latency) in &topo.edges {
            prop_assert!(a < brokers && b < brokers);
            prop_assert_ne!(a, b, "self-loop");
            prop_assert!(latency > Duration::ZERO);
        }
    }
}

// --------------------------------------------------------------------
// Engine digest identity over generated topologies.
// --------------------------------------------------------------------

const GOSSIP_PORT: Port = Port(7);

/// Floods a TTL-carrying ping over the generated overlay: each node
/// greets its neighbors on start; every received hop is re-sent to all
/// neighbors with the budget (carried in `nonce`) decremented. Multi-hop
/// cross-shard traffic, which is exactly what the worker-invariance
/// claim must hold under.
struct Gossip {
    neighbors: Vec<NodeId>,
    heard: u64,
}

impl Actor for Gossip {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        let me = ctx.me();
        for &n in &self.neighbors {
            let ping = Message::Ping {
                nonce: 3, // hop budget
                sent_at: ctx.now().as_micros(),
                reply_to: Endpoint::new(me, GOSSIP_PORT),
            };
            ctx.send_udp(GOSSIP_PORT, Endpoint::new(n, GOSSIP_PORT), &ping);
        }
    }

    fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
        let Incoming::Datagram { msg, .. } = event else { return };
        let Message::Ping { nonce, .. } = msg.message() else { return };
        self.heard += 1;
        if *nonce == 0 {
            return;
        }
        let me = ctx.me();
        let hop = Message::Ping {
            nonce: nonce - 1,
            sent_at: ctx.now().as_micros(),
            reply_to: Endpoint::new(me, GOSSIP_PORT),
        };
        for &n in &self.neighbors {
            ctx.send_udp(GOSSIP_PORT, Endpoint::new(n, GOSSIP_PORT), &hop);
        }
    }

    impl_actor_any!();
}

/// Builds a sim over the generated topology and floods it.
fn run_gossip(kind: TopologyKind, brokers: usize, seed: u64, workers: usize) -> (u64, u64) {
    let topo = TopologySpec::new(kind, brokers, seed).generate();
    let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); brokers];
    for &(a, b, _) in &topo.edges {
        neighbors[a].push(NodeId(b as u32));
        neighbors[b].push(NodeId(a as u32));
    }
    for list in &mut neighbors {
        list.sort_unstable();
        list.dedup();
    }
    let mut sim = ShardedSim::with_clock_profile(seed, ClockProfile::perfect());
    let ids: Vec<NodeId> = (0..brokers)
        .map(|i| {
            let actor = Gossip { neighbors: std::mem::take(&mut neighbors[i]), heard: 0 };
            sim.add_node(
                &format!("g{i}"),
                RealmId(topo.region_of[i] as u16),
                Box::new(actor),
            )
        })
        .collect();
    topo.install(sim.network_mut(), &ids);
    sim.set_workers(workers);
    sim.set_shards(4);
    sim.run_for(Duration::from_secs(2));
    (sim.digest(), sim.events_processed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The worker-invariance contract at the foundation of the scale
    /// campaign's byte-identity gate: the same generated topology under
    /// the same flood produces identical engine digests and event
    /// counts at 1, 2, and 4 workers.
    #[test]
    fn engine_digest_is_worker_invariant_over_generated_topologies(
        kind in kind_strategy(),
        brokers in 3usize..40,
        seed in any::<u64>(),
    ) {
        let (d1, e1) = run_gossip(kind, brokers, seed, 1);
        let (d2, e2) = run_gossip(kind, brokers, seed, 2);
        let (d4, e4) = run_gossip(kind, brokers, seed, 4);
        prop_assert!(e1 > 0, "flood must generate traffic");
        prop_assert_eq!(d1, d2, "1 vs 2 workers");
        prop_assert_eq!(d1, d4, "1 vs 4 workers");
        prop_assert_eq!(e1, e2);
        prop_assert_eq!(e1, e4);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the exact API subset the workspace uses: [`RngCore`],
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`, `fill`),
//! [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64. It
//! does **not** produce the same stream as the real `rand::rngs::StdRng`
//! (ChaCha12); nothing in this workspace depends on the concrete stream,
//! only on determinism given a seed, which this shim guarantees.

/// The core of a random number generator: raw output blocks.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Values samplable uniformly from their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}

impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64);
impl_standard_uint!(i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` using the widening-multiply reduction
/// (bias < 2^-64, irrelevant here; determinism is what matters).
#[inline]
fn reduce_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

#[inline]
fn reduce_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    if span <= u128::from(u64::MAX) {
        u128::from(reduce_u64(rng, span as u64))
    } else {
        // Rejection sampling over the full 128-bit domain.
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let v = u128::sample_standard(rng);
            if v <= zone {
                return v % span;
            }
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty as $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                self.start.wrapping_add(reduce_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                if span == u128::MAX {
                    return <$t as Standard>::sample_standard(rng);
                }
                lo.wrapping_add(reduce_u128(rng, span + 1) as $t)
            }
        }
    )+};
}

impl_sample_range!(
    u8 as u8, u16 as u16, u32 as u32, u64 as u64, u128 as u128, usize as usize,
    i8 as u8, i16 as u16, i32 as u32, i64 as u64, i128 as u128, isize as usize,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Buffers fillable by `Rng::fill`.
pub trait Fill {
    /// Fills `self` with random data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 seed expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the real `rand` StdRng stream — see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (&mut *rng).gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (&mut *rng).gen_range(0..self.len());
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0usize..=0);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn dyn_rngcore_supports_rng_methods() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0u64..=9);
        assert!(v < 10);
        let b: bool = dyn_rng.gen();
        let _ = b;
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "overwhelmingly unlikely to be identity");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

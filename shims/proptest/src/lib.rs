//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses:
//! the `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!`
//! macros, the [`strategy::Strategy`] trait with `prop_map` and `boxed`,
//! `any::<T>()` for primitives, integer/float range strategies, a small
//! regex-subset string strategy (character classes + `{m,n}` repetition),
//! `prop::collection::{vec, btree_map}`, `prop::option::of`, and
//! `prop::sample::Index`.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its case number and the run is fully deterministic, so it reproduces
//! exactly), and the case seed derives from the test name rather than a
//! persisted failure file. Set `PROPTEST_CASES` to override the per-test
//! case count.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's inputs violated a `prop_assume!`; skipped, not failed.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Drives the cases of one `proptest!` test.
    pub struct TestRunner {
        rng: StdRng,
        cases: u32,
    }

    impl TestRunner {
        /// A runner whose random stream is a pure function of the test
        /// name, so every `cargo test` run sees identical cases.
        pub fn new_deterministic(config: &ProptestConfig, test_name: &str) -> Self {
            // FNV-1a over the test name picks the stream.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner { rng: StdRng::seed_from_u64(hash), cases: config.cases }
        }

        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// Draws one value from `strategy`.
        pub fn generate<S: crate::strategy::Strategy>(&mut self, strategy: &S) -> S::Value {
            strategy.new_value(&mut self.rng)
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of random values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a
    /// strategy is just a deterministic function of the RNG state.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// A strategy producing `f` applied to this strategy's values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map: f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    // Object-safe core so strategies of one value type can be unified.
    trait DynStrategy<T> {
        fn dyn_new_value(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_new_value(&self, rng: &mut StdRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased strategy; see [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            self.0.dyn_new_value(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            let pick = rng.gen_range(0..self.arms.len());
            self.arms[pick].new_value(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// String literals act as strategies over a regex subset: a sequence
    /// of literal characters and `[...]` classes (with ranges), each
    /// optionally followed by `{n}` or `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut StdRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    /// The canonical strategy for `T`; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — every value of `T` equally likely.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, u128, i8, i16, i32, i64, bool);

    impl Arbitrary for usize {
        fn arbitrary_value(rng: &mut StdRng) -> usize {
            rng.gen::<u64>() as usize
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary_value(rng: &mut StdRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary_value(rng))
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Accepted element counts for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty collection size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }

    /// `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `BTreeMap`s with `size.pick()` insertions (duplicate keys collapse,
    /// as with real proptest's map strategies under small key spaces).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            let mut map = BTreeMap::new();
            for _ in 0..n {
                map.insert(self.key.new_value(rng), self.value.new_value(rng));
            }
            map
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// `Option`s of `inner` values: `None` one time in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A length-agnostic random index: draw one with `any::<Index>()`,
    /// then project it into any collection with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// This index projected into a collection of length `len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_value(rng: &mut StdRng) -> Index {
            Index(rng.gen())
        }
    }
}

pub mod string {
    use rand::rngs::StdRng;
    use rand::Rng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Vec<(char, char)>, usize) {
        let mut ranges = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = chars[i];
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                ranges.push((c, chars[i + 2]));
                i += 3;
            } else {
                ranges.push((c, c));
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated [class] in string strategy");
        (ranges, i + 1)
    }

    fn parse_repeat(chars: &[char], mut i: usize) -> (usize, usize, usize) {
        // Called just past `{`; returns (min, max, next index past `}`).
        let mut first = String::new();
        while i < chars.len() && chars[i].is_ascii_digit() {
            first.push(chars[i]);
            i += 1;
        }
        let min: usize = first.parse().expect("bad {m,n} in string strategy");
        let max;
        if chars[i] == ',' {
            i += 1;
            let mut second = String::new();
            while i < chars.len() && chars[i].is_ascii_digit() {
                second.push(chars[i]);
                i += 1;
            }
            max = second.parse().expect("bad {m,n} in string strategy");
        } else {
            max = min;
        }
        assert!(chars[i] == '}', "unterminated {{m,n}} in string strategy");
        (min, max, i + 1)
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = if chars[i] == '[' {
                let (ranges, next) = parse_class(&chars, i + 1);
                i = next;
                Atom::Class(ranges)
            } else {
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let (lo, hi, next) = parse_repeat(&chars, i + 1);
                i = next;
                (lo, hi)
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Generates one string matching the regex-subset `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = rng.gen_range(piece.min..=piece.max);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        // Weight each range by its width for uniformity
                        // over the class's characters.
                        let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
                        let mut pick = rng.gen_range(0..total);
                        for (lo, hi) in ranges {
                            let width = *hi as u32 - *lo as u32 + 1;
                            if pick < width {
                                out.push(char::from_u32(*lo as u32 + pick).unwrap());
                                break;
                            }
                            pick -= width;
                        }
                    }
                }
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Mirrors real proptest's `prelude::prop` module of strategy builders.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::new_deterministic(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            $(let $arg = &$strategy;)+
            for case in 0..runner.cases() {
                $(let $arg = runner.generate($arg);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, runner.cases(), msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

/// Asserts within a `proptest!` body; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` specialised to equality, printing both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` specialised to inequality, printing both operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// Skips the current case when its inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            Just(Shape::Dot),
            any::<u8>().prop_map(Shape::Line),
        ]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..16, y in 0u16..=1000) {
            prop_assert!((3..16).contains(&x));
            prop_assert!(y <= 1000);
        }

        #[test]
        fn strings_match_pattern(s in "[a-z0-9]{1,8}", t in "[a-z][a-z0-9.]{0,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            prop_assert!(t.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(t.len() <= 13);
        }

        #[test]
        fn collections_and_options(
            v in prop::collection::vec(any::<u8>(), 0..10),
            m in prop::collection::btree_map("[a-d]{1,6}", 0u32..10, 0..5),
            o in prop::option::of(1u32..4),
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(m.len() < 5);
            if let Some(x) = o {
                prop_assert!((1..4).contains(&x));
            }
        }

        #[test]
        fn oneof_index_and_assume(
            shape in arb_shape(),
            pick in any::<prop::sample::Index>(),
            n in 1usize..20,
        ) {
            prop_assume!(n != 13);
            prop_assert!(pick.index(n) < n);
            match shape {
                Shape::Dot => {}
                Shape::Line(_) => {}
            }
            prop_assert_ne!(n, 13);
            prop_assert_eq!(n, n);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let config = ProptestConfig::with_cases(5);
        let strat = prop::collection::vec(0u64..1000, 1..20);
        let mut a = crate::test_runner::TestRunner::new_deterministic(&config, "same");
        let mut b = crate::test_runner::TestRunner::new_deterministic(&config, "same");
        for _ in 0..5 {
            assert_eq!(a.generate(&strat), b.generate(&strat));
        }
    }
}

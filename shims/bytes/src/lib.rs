//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, immutable, reference-counted byte
//! buffer (an `Arc<[u8]>` window); [`BytesMut`] is a growable buffer
//! that freezes into a [`Bytes`]. The [`Buf`]/[`BufMut`] traits provide
//! the big-endian cursor operations the wire codec uses.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer borrowing a `'static` slice (copied; the distinction
    /// does not matter for this workspace).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// A buffer owning a copy of `bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes { data: Arc::from(bytes), start: 0, end: bytes.len() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-window sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end: len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Bytes {
        v.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        debug_bytes(self.as_ref(), f)
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// Shared `Debug` body for both buffer types: hex dump, abbreviated.
fn debug_bytes(bytes: &[u8], f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes.iter().take(64) {
        write!(f, "\\x{b:02x}")?;
    }
    if bytes.len() > 64 {
        write!(f, "..")?;
    }
    write!(f, "\"")
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.buf.extend_from_slice(other);
    }

    /// Removes and returns the first `at` bytes as a new `BytesMut`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.buf.split_off(at);
        BytesMut { buf: std::mem::replace(&mut self.buf, rest) }
    }

    /// Splits off the tail from `at`, keeping the head in `self`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut { buf: self.buf.split_off(at) }
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        debug_bytes(self.as_ref(), f)
    }
}

/// Read cursor over a byte source. All integer reads are big-endian.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// The current contiguous chunk.
    fn chunk(&self) -> &[u8];
    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice: buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Reads a big-endian `f64` (IEEE-754 bits).
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        self.buf.drain(..cnt);
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write sink for bytes. All integer writes are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `f64` (IEEE-754 bits).
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_slice() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let c = b.clone();
        assert_eq!(c, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn bytesmut_put_get_bigendian() {
        let mut m = BytesMut::with_capacity(64);
        m.put_u8(7);
        m.put_u16(0x0102);
        m.put_u32(0x0304_0506);
        m.put_u64(0x0708_090A_0B0C_0D0E);
        m.put_u128(1);
        m.put_i64(-2);
        m.put_f64(1.5);
        m.put_slice(b"xyz");
        let frozen = m.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x0304_0506);
        assert_eq!(r.get_u64(), 0x0708_090A_0B0C_0D0E);
        assert_eq!(r.get_u128(), 1);
        assert_eq!(r.get_i64(), -2);
        assert_eq!(r.get_f64(), 1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_to_keeps_both_halves() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"hello world");
        let head = m.split_to(5);
        assert_eq!(head.as_ref(), b"hello");
        assert_eq!(m.as_ref(), b" world");
    }

    #[test]
    fn bytes_advance_moves_window() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        Buf::advance(&mut b, 1);
        assert_eq!(b.as_ref(), &[8, 7]);
        assert_eq!(b.remaining(), 2);
    }
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`: unbounded MPMC channels with cloneable
//! senders *and* receivers, blocking/timeout receives, and disconnect
//! detection — implemented over `Mutex` + `Condvar`. Throughput is lower
//! than real crossbeam but the semantics match what this workspace uses
//! (the threaded runtime's wire thread and the parallel bench executor).

pub mod channel {
    //! MPMC channels.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<ChannelState<T>>,
        ready: Condvar,
    }

    struct ChannelState<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely (MPMC: each item goes to exactly
    /// one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(ChannelState { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Like [`Receiver::recv`] but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, result) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = s;
                if result.timed_out() && state.items.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = state.items.pop_front() {
                Ok(v)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).items.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers += 1;
            drop(state);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
            let (tx2, rx2) = unbounded::<u32>();
            drop(rx2);
            assert_eq!(tx2.send(1), Err(SendError(1)));
        }

        #[test]
        fn mpmc_work_sharing_delivers_every_item_once() {
            let (tx, rx) = unbounded::<u64>();
            let n = 1000u64;
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            drop(rx);
            let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded::<u32>();
            let h = thread::spawn(move || rx.recv().unwrap());
            thread::sleep(Duration::from_millis(20));
            tx.send(42).unwrap();
            assert_eq!(h.join().unwrap(), 42);
        }
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's bench-definition API this
//! workspace uses (`Criterion`, `benchmark_group`, `bench_function`,
//! `Throughput`, `black_box`, `criterion_group!`, `criterion_main!`)
//! over a simple calibrated-timing loop: each benchmark is warmed up,
//! the iteration count is scaled to a target measurement time, and the
//! mean per-iteration time is printed. No statistics, plots, or saved
//! baselines — just honest wall-clock numbers so `cargo bench` runs
//! offline.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, calling it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` against a fresh input from `setup` per iteration;
    /// only the routine is measured.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a plain argument;
        // ignore harness flags we don't implement.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion { measurement_time: Duration::from_millis(400), filter }
    }
}

impl Criterion {
    /// Sets the target time spent measuring each benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Defines and immediately runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let filtered_out = self
            .filter
            .as_ref()
            .map(|needle| !id.contains(needle.as_str()))
            .unwrap_or(false);
        if !filtered_out {
            run_bench(id, self.measurement_time, None, f);
        }
        self
    }

    /// No-op in the shim; real criterion prints a summary here.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is
    /// time-driven rather than sample-driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput used to report a rate alongside the time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the target time spent measuring each benchmark in the group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Defines and immediately runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let filtered_out = self
            .criterion
            .filter
            .as_ref()
            .map(|needle| !full.contains(needle.as_str()))
            .unwrap_or(false);
        if !filtered_out {
            run_bench(&full, self.criterion.measurement_time, self.throughput, f);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    target: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: start at one iteration and grow until the measured span
    // is long enough to extrapolate a stable iteration count.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 30 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(8);
    };
    let measured_iters = ((target.as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, 1 << 34);
    let mut b = Bencher { iters: measured_iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / measured_iters as f64;

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => format!("  {}/s", human_bytes(n as f64 / mean)),
        Some(Throughput::Elements(n)) => format!("  {:.2} Melem/s", n as f64 / mean / 1e6),
        None => String::new(),
    };
    println!(
        "bench {:<52} {:>12}/iter  ({} iters){}",
        id,
        human_time(mean),
        measured_iters,
        rate
    );
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{:.3} s", secs)
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn human_bytes(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} GiB", rate / (1u64 << 30) as f64)
    } else if rate >= 1e6 {
        format!("{:.2} MiB", rate / (1u64 << 20) as f64)
    } else {
        format!("{:.2} KiB", rate / 1024.0)
    }
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("shim_group");
        g.sample_size(10).throughput(Throughput::Bytes(64));
        g.bench_function("copy", |b| {
            b.iter_with_setup(|| vec![0u8; 64], |v| v.iter().map(|&x| x as u64).sum::<u64>())
        });
        g.finish();
    }
}

//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the std synchronisation primitives with `parking_lot`'s
//! poison-free API: `lock()` returns the guard directly, and a panic
//! while holding the lock does not poison it for later users.

use std::sync;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock still usable");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}

//! Fault-tolerance paths of §7: dead BDNs, multicast fallback, the
//! cached target set after prolonged disconnects, broker churn and
//! policy-based refusals.

use std::time::Duration;

use nb::broker::TopologyKind;
use nb::discovery::scenario::ScenarioBuilder;
use nb::discovery::{DiscoveryClient, Phase, ResponsePolicy};
use nb::net::wan::BLOOMINGTON;
use nb::net::Incoming;
use nb::wire::{Credential, RealmId};

fn fast_failover(builder: &mut ScenarioBuilder) {
    builder.discovery.ack_timeout = Duration::from_millis(400);
    builder.discovery.retransmits_per_bdn = 1;
}

#[test]
fn dead_bdn_falls_back_to_multicast() {
    // Lab brokers exist, so multicast can save the day.
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 21);
    builder.broker_sites = vec![BLOOMINGTON, BLOOMINGTON, 2, 3, 4];
    fast_failover(&mut builder);
    let mut s = builder.build();
    s.sim.crash(s.bdn.unwrap());
    let outcome = s.run_discovery_once();
    assert!(outcome.used_multicast, "must have fallen back to multicast");
    let chosen = outcome.chosen.expect("a lab broker answers");
    assert_eq!(s.site_of_broker(chosen), Some(BLOOMINGTON));
}

#[test]
fn dead_bdn_and_no_multicast_uses_cached_targets() {
    // §7: "if the requesting node is arriving after a prolonged
    // disconnect, and if none of the BDNs are available, the requesting
    // node can issue a broker request to one or more of the nodes in the
    // [remembered] target set".
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 22);
    fast_failover(&mut builder);
    let mut s = builder.build();

    // First run (healthy): populates the cached target set.
    let first = s.run_discovery_once();
    assert!(first.chosen.is_some());
    assert!(!first.target_set.is_empty());

    // Now the BDN dies and multicast is disabled outright — at the
    // network model (no group delivery) and in the client's runtime
    // config (it will not even try) — forcing the cached path.
    s.sim.crash(s.bdn.unwrap());
    s.sim.set_multicast_enabled(false);
    {
        let client = s.sim.actor_mut::<DiscoveryClient>(s.client).unwrap();
        assert_eq!(client.last_target_set, first.target_set, "target set remembered");
        client.config_mut().multicast_enabled = false;
    }
    let second = s.run_discovery_once();
    assert!(!second.used_multicast, "multicast is disabled and must not be attempted");
    assert!(second.used_cached_targets, "cached target set must be used");
    assert!(second.chosen.is_some(), "reconnection through remembered brokers succeeds");
    assert!(
        first.target_set.contains(&second.chosen.unwrap()),
        "the reconnect lands on a remembered broker"
    );
}

#[test]
fn chosen_broker_crash_then_rediscovery_picks_another() {
    let mut s = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 23).build();
    let first = s.run_discovery_once();
    let victim = first.chosen.unwrap();
    s.sim.crash(victim);
    // Give the overlay time to notice the dead hub/spoke via heartbeats.
    s.sim.run_for(Duration::from_secs(15));
    let second = s.run_discovery_once();
    let survivor = second.chosen.expect("rediscovery succeeds");
    assert_ne!(survivor, victim, "a different broker is selected");
}

#[test]
fn no_brokers_at_all_fails_cleanly() {
    let mut builder = ScenarioBuilder::new(TopologyKind::Unconnected, BLOOMINGTON, 24);
    fast_failover(&mut builder);
    builder.discovery.collection_window = Duration::from_millis(800);
    builder.discovery.ping_window = Duration::from_millis(300);
    let mut s = builder.build();
    for &b in &s.brokers.clone() {
        s.sim.crash(b);
    }
    let outcome = s.run_discovery_once();
    assert!(outcome.chosen.is_none(), "no broker can be discovered");
    assert_eq!(s.client_phase(), Phase::Failed);
    assert!(outcome.used_multicast, "every fallback was attempted");
}

#[test]
fn realm_policy_restricts_responses() {
    // §5/§7: "the policy may also dictate that responses be issued only
    // if the request originated from within a set of pre-defined network
    // realms". The client's realm is not on the list, so nothing answers.
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 25);
    fast_failover(&mut builder);
    builder.discovery.collection_window = Duration::from_millis(800);
    builder.discovery.ping_window = Duration::from_millis(300);
    builder.policy = ResponsePolicy::realms(vec![RealmId(999)]);
    let mut s = builder.build();
    let outcome = s.run_discovery_once();
    assert_eq!(outcome.responses_received, 0);
    assert!(outcome.chosen.is_none());
}

#[test]
fn credential_policy_admits_the_right_principal() {
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 26);
    builder.policy = ResponsePolicy::principals(vec!["alice".into()]);
    builder.discovery.credentials =
        Some(Credential { principal: "alice".into(), token: b"tok".to_vec() });
    let mut s = builder.build();
    let outcome = s.run_discovery_once();
    assert!(outcome.chosen.is_some(), "credentialed client is served");
    assert_eq!(outcome.responses_received, 5);
}

#[test]
fn credential_policy_rejects_the_wrong_principal() {
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 27);
    fast_failover(&mut builder);
    builder.discovery.collection_window = Duration::from_millis(800);
    builder.discovery.ping_window = Duration::from_millis(300);
    builder.policy = ResponsePolicy::principals(vec!["alice".into()]);
    builder.discovery.credentials =
        Some(Credential { principal: "mallory".into(), token: b"tok".to_vec() });
    let mut s = builder.build();
    let outcome = s.run_discovery_once();
    assert_eq!(outcome.responses_received, 0, "mallory gets no responses");
    assert!(outcome.chosen.is_none());
}

#[test]
fn client_can_be_rerun_many_times_across_faults() {
    // A long life of one client: healthy runs, a BDN blip, recovery.
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 28);
    fast_failover(&mut builder);
    let mut s = builder.build();
    let healthy = s.run_discovery(2);
    assert!(healthy.iter().all(|o| o.chosen.is_some()));

    let bdn = s.bdn.unwrap();
    s.sim.crash(bdn);
    let degraded = s.run_discovery_once();
    // Remote-only brokers: multicast finds nobody; cached targets save us.
    assert!(degraded.used_cached_targets || degraded.used_multicast);
    assert!(degraded.chosen.is_some());

    s.sim.revive(bdn);
    s.sim.run_for(Duration::from_secs(130)); // brokers re-advertise (120s period)
    let recovered = s.run_discovery_once();
    assert!(recovered.chosen.is_some());
    assert!(!recovered.used_cached_targets, "BDN path works again");
    let client = s.sim.actor::<DiscoveryClient>(s.client).unwrap();
    assert_eq!(client.completed.len(), 4);
    // Injecting a stray start while idle is harmless.
    s.sim.inject(
        s.client,
        Duration::from_millis(1),
        Incoming::Timer { token: nb::discovery::client::TIMER_START },
    );
    s.sim.run_for(Duration::from_secs(30));
}

#[test]
fn private_bdn_refuses_to_disseminate_without_credentials() {
    // §2.4: "A private BDN must also require the presentation of
    // appropriate credentials before it decides whether it will
    // disseminate the broker discovery request." The uncredentialed
    // client is acked (receipt confirmation) but its request goes
    // nowhere; with no lab brokers, the multicast fallback also fails,
    // so the run ends with zero responses.
    use nb::discovery::bdn::Bdn;
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 29);
    fast_failover(&mut builder);
    builder.discovery.collection_window = Duration::from_millis(800);
    builder.discovery.ping_window = Duration::from_millis(300);
    builder.bdn.policy = ResponsePolicy::principals(vec!["alice".into()]);
    let mut s = builder.build();
    let outcome = s.run_discovery_once();
    let bdn = s.sim.actor::<Bdn>(s.bdn.unwrap()).unwrap();
    assert!(bdn.rejected_requests >= 1, "dissemination refused");
    assert_eq!(bdn.requests_handled, 0);
    assert_eq!(outcome.responses_received, 0);
    assert!(outcome.chosen.is_none());

    // The same scenario with credentials sails through.
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 30);
    builder.bdn.policy = ResponsePolicy::principals(vec!["alice".into()]);
    builder.discovery.credentials =
        Some(Credential { principal: "alice".into(), token: vec![] });
    let mut s = builder.build();
    let outcome = s.run_discovery_once();
    assert!(outcome.chosen.is_some());
    let bdn = s.sim.actor::<Bdn>(s.bdn.unwrap()).unwrap();
    assert_eq!(bdn.requests_handled, 1);
}

#[test]
fn bdn_registry_expires_dead_brokers() {
    // §1.2's fluid environment: a broker that stops re-advertising drops
    // out of the registry, so later discoveries are not steered at a
    // ghost.
    use nb::discovery::bdn::Bdn;
    let mut builder = ScenarioBuilder::new(TopologyKind::Unconnected, BLOOMINGTON, 31);
    builder.bdn.ad_ttl = Duration::from_secs(150); // one missed 120s re-ad
    let mut s = builder.build();
    let victim = s.brokers[4]; // Cardiff
    s.sim.crash(victim);
    // Over ~3 re-advertisement periods the survivors refresh while the
    // victim's entry ages out.
    s.sim.run_for(Duration::from_secs(400));
    let bdn = s.sim.actor::<Bdn>(s.bdn.unwrap()).unwrap();
    assert!(bdn.registered(victim).is_none(), "dead broker expired from the registry");
    assert_eq!(bdn.registry_len(), 4, "survivors remain registered");
    assert!(bdn.ads_expired >= 1);
    // Discovery still succeeds against the four survivors.
    let outcome = s.run_discovery_once();
    assert!(outcome.chosen.is_some());
    assert!(outcome.responses_received >= 3);
}

#[test]
fn bdn_skips_stale_lease_targets_between_pings() {
    // The lease gate must hold even before the ping timer prunes the
    // registry: a broker whose advertisement lease lapsed is never an
    // injection target, so no discovery is ever steered at it.
    use nb::discovery::bdn::Bdn;
    let mut builder = ScenarioBuilder::new(TopologyKind::Unconnected, BLOOMINGTON, 35);
    builder.bdn.ad_ttl = Duration::from_secs(150); // one missed 120s re-ad
    builder.bdn.ping_interval = Duration::from_secs(100_000); // pruning never runs
    let mut s = builder.build();
    let victim = s.brokers[4]; // Cardiff
    s.sim.crash(victim);
    s.sim.run_for(Duration::from_secs(200)); // the victim's lease lapses
    {
        let bdn = s.sim.actor::<Bdn>(s.bdn.unwrap()).unwrap();
        assert!(bdn.registered(victim).is_some(), "entry still present (no pruning)");
        assert!(!bdn.lease_valid(victim, s.sim.now()), "but its lease has lapsed");
    }
    let outcome = s.run_discovery_once();
    assert!(outcome.chosen.is_some(), "survivors still serve the request");
    assert_ne!(outcome.chosen, Some(victim));
    let bdn = s.sim.actor::<Bdn>(s.bdn.unwrap()).unwrap();
    assert!(bdn.stale_targets_skipped >= 1, "the expired lease was skipped at injection time");
}

#[test]
fn client_fails_over_to_the_second_bdn() {
    // §3: the node configuration file lists several BDNs
    // (gridservicelocator.org/.com/…); when the first is down the client
    // retransmits, then moves down the list.
    use nb::broker::{BrokerConfig, MachineProfile};
    use nb::discovery::bdn::{Bdn, BdnConfig};
    use nb::discovery::{DiscoveryBrokerActor, DiscoveryConfig};
    use nb::net::{ClockProfile, LinkSpec, Sim};

    let mut sim = Sim::with_clock_profile(33, ClockProfile::perfect());
    sim.network_mut().intra_realm_spec = LinkSpec::lan().with_loss(0.0);
    let bdn_org = sim.add_node("bdn.org", RealmId(0), Box::new(Bdn::new(BdnConfig::default())));
    let bdn_com = sim.add_node("bdn.com", RealmId(0), Box::new(Bdn::new(BdnConfig::default())));
    let _broker = sim.add_node(
        "b0",
        RealmId(0),
        Box::new(DiscoveryBrokerActor::new(
            BrokerConfig {
                hostname: "b0".into(),
                machine: MachineProfile::default_2005(),
                ..BrokerConfig::default()
            },
            vec![bdn_org, bdn_com], // registers with both (§2.1)
            ResponsePolicy::open(),
        )),
    );
    let cfg = DiscoveryConfig {
        bdns: vec![bdn_org, bdn_com],
        max_responses: 1,
        collection_window: Duration::from_millis(800),
        ping_window: Duration::from_millis(300),
        ack_timeout: Duration::from_millis(300),
        retransmits_per_bdn: 1,
        ..DiscoveryConfig::default()
    };
    sim.crash(bdn_org);
    let client = sim.add_node(
        "client",
        RealmId(0),
        Box::new(DiscoveryClient::with_auto_start(cfg, true)),
    );
    sim.run_for(Duration::from_secs(10));
    let c = sim.actor::<DiscoveryClient>(client).unwrap();
    let outcome = c.outcome().expect("completed");
    assert!(outcome.chosen.is_some(), "the second BDN served the request");
    assert_eq!(outcome.bdn_used, Some(bdn_com), "failover landed on bdn.com");
    assert!(!outcome.used_multicast, "no need for the multicast fallback");
    let com = sim.actor::<Bdn>(bdn_com).unwrap();
    assert_eq!(com.requests_handled, 1);
}

//! End-to-end discovery over the simulated WAN testbed: nearest-broker
//! selection, flood dissemination, dedup behaviour and idempotent
//! retransmission — the paper's core claims, §4–§6 and §8.

use std::time::Duration;

use nb::broker::TopologyKind;
use nb::discovery::bdn::Bdn;
use nb::discovery::scenario::ScenarioBuilder;
use nb::discovery::DiscoveryBrokerActor;
use nb::net::wan::{BLOOMINGTON, CARDIFF, FSU, INDIANAPOLIS, NCSA, UMN};

#[test]
fn every_client_site_finds_a_nearby_broker() {
    // Advantage #1 (§8): "the broker will be connected to one of the
    // closest available brokers". With default weights the chosen broker
    // must be among the two nearest sites to the client.
    let wan = nb::net::wan::WanModel::paper();
    for (seed, client_site) in
        [(1u64, BLOOMINGTON), (2, FSU), (3, CARDIFF), (4, UMN), (5, NCSA)]
    {
        let mut s = ScenarioBuilder::new(TopologyKind::Star, client_site, seed).build();
        let outcome = s.run_discovery_once();
        let chosen_site = s.site_of_broker(outcome.chosen.expect("success")).unwrap();
        // Rank broker sites by distance from the client.
        let mut by_distance: Vec<usize> = vec![INDIANAPOLIS, UMN, NCSA, FSU, CARDIFF];
        by_distance.sort_by_key(|&b| wan.one_way(client_site, b));
        let rank = by_distance.iter().position(|&b| b == chosen_site).unwrap();
        assert!(
            rank <= 1,
            "client at {} chose {} (distance rank {rank})",
            wan.site(client_site).name,
            wan.site(chosen_site).name
        );
    }
}

#[test]
fn star_flood_reaches_every_spoke_exactly_once() {
    let mut s = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 10).build();
    let outcome = s.run_discovery_once();
    assert_eq!(outcome.responses_received, 5, "all five brokers respond");
    for (i, &broker) in s.brokers.clone().iter().enumerate() {
        let actor = s.sim.actor::<DiscoveryBrokerActor>(broker).unwrap();
        assert_eq!(
            actor.responder.responses_sent, 1,
            "broker {i} must answer exactly once"
        );
        assert_eq!(actor.responder.duplicates_suppressed, 0, "no duplicate requests in a tree");
    }
}

#[test]
fn linear_chain_propagates_to_the_far_end() {
    let mut s = ScenarioBuilder::new(TopologyKind::Linear, BLOOMINGTON, 11).build();
    let outcome = s.run_discovery_once();
    // The last broker in the chain (Cardiff) is 4 hops from the injection
    // point; it must still have been reached.
    let last = *s.brokers.last().unwrap();
    let actor = s.sim.actor::<DiscoveryBrokerActor>(last).unwrap();
    assert_eq!(actor.responder.responses_sent, 1, "chain end answered");
    assert!(outcome.responses_received >= 4);
}

#[test]
fn repeated_runs_are_deduplicated_not_reanswered() {
    // Each run uses a fresh UUID, so brokers answer each run once; the
    // dedup cache only suppresses *within* a run (multi-point injection).
    let mut s = ScenarioBuilder::new(TopologyKind::Unconnected, BLOOMINGTON, 12).build();
    let runs = s.run_discovery(3);
    assert!(runs.iter().all(|o| o.chosen.is_some()));
    for &broker in &s.brokers.clone() {
        let actor = s.sim.actor::<DiscoveryBrokerActor>(broker).unwrap();
        assert_eq!(actor.responder.responses_sent, 3, "one response per run");
    }
}

#[test]
fn lossy_bdn_path_is_survived_by_retransmission() {
    // §7: "the scheme outlined sustains loss of both the discovery
    // requests (retransmission after predefined period of inactivity)
    // and discovery responses".
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 13);
    builder.discovery.retransmits_per_bdn = 10;
    builder.discovery.ack_timeout = Duration::from_millis(300);
    let mut s = builder.build();
    let bdn = s.bdn.unwrap();
    let client = s.client;
    // Half of all datagrams between client and BDN vanish.
    let mut spec = s.sim.network().spec_between(client, bdn).unwrap();
    spec.loss = 0.5;
    s.sim.network_mut().set_link(client, bdn, spec);

    let outcome = s.run_discovery_once();
    assert!(outcome.chosen.is_some(), "discovery succeeds despite 50% loss to the BDN");
    let bdn_actor = s.sim.actor::<Bdn>(bdn).unwrap();
    assert!(
        bdn_actor.duplicate_requests > 0 || bdn_actor.requests_handled == 1,
        "retransmissions must be idempotent at the BDN \
         (handled {}, duplicates {})",
        bdn_actor.requests_handled,
        bdn_actor.duplicate_requests
    );
}

#[test]
fn bdn_registry_learns_all_advertisers_and_measures_rtt() {
    let mut s = ScenarioBuilder::new(TopologyKind::Unconnected, BLOOMINGTON, 14).build();
    // Warmup already ran; give the BDN another ping round.
    s.sim.run_for(Duration::from_secs(10));
    let bdn = s.bdn.unwrap();
    let bdn_actor = s.sim.actor::<Bdn>(bdn).unwrap();
    assert_eq!(bdn_actor.registry_len(), 5, "all brokers registered");
    for &broker in &s.brokers {
        let reg = bdn_actor.registered(broker).expect("registered");
        let rtt = reg.rtt_us.expect("RTT measured by the BDN's ping loop");
        assert!(rtt > 0);
    }
}

#[test]
fn outcome_reports_consistent_target_set_and_rtts() {
    let mut s = ScenarioBuilder::new(TopologyKind::Star, FSU, 15).build();
    let outcome = s.run_discovery_once();
    let chosen = outcome.chosen.unwrap();
    assert!(
        outcome.target_set.contains(&chosen),
        "the connected broker must come from the target set"
    );
    assert!(
        outcome.rtts_us.iter().any(|(b, _)| *b == chosen),
        "the chosen broker must have answered pings"
    );
    // RTTs only from target-set members.
    for (b, _) in &outcome.rtts_us {
        assert!(outcome.target_set.contains(b));
    }
}

#[test]
fn deterministic_reproduction_under_a_seed() {
    let run = |seed| {
        let mut s = ScenarioBuilder::new(TopologyKind::Linear, BLOOMINGTON, seed).build();
        let o = s.run_discovery_once();
        (o.chosen, o.phases.total(), o.responses_received)
    };
    assert_eq!(run(77), run(77), "same seed, same outcome");
}

#[test]
fn refused_connection_walks_down_the_target_set() {
    // The ping winner refuses connections (at capacity); the client must
    // walk down the target set instead of failing (§6's "arrive at the
    // target broker" made robust).
    use nb::discovery::DiscoveryBrokerActor;
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 16);
    let mut s = builder_build_with_full_hub(&mut builder);
    let outcome = s.run_discovery_once();
    let chosen = outcome.chosen.expect("an alternative broker accepted");
    assert_ne!(
        s.site_of_broker(chosen),
        Some(INDIANAPOLIS),
        "the saturated nearest broker was skipped"
    );
    let hub = s.brokers[0];
    let hub_actor = s.sim.actor::<DiscoveryBrokerActor>(hub).unwrap();
    assert!(
        !hub_actor.broker.has_client(s.client),
        "the saturated hub must not hold the discovery client"
    );
}

/// Builds the scenario, then drops the hub broker's client capacity to
/// its current occupancy (the attached BDN) so new connects are refused.
fn builder_build_with_full_hub(
    builder: &mut ScenarioBuilder,
) -> nb::discovery::scenario::Scenario {
    let mut s = builder.clone().build();
    let hub = s.brokers[0];
    let occupancy = {
        let actor = s.sim.actor::<nb::discovery::DiscoveryBrokerActor>(hub).unwrap();
        actor.broker.num_clients()
    };
    let actor = s.sim.actor_mut::<nb::discovery::DiscoveryBrokerActor>(hub).unwrap();
    actor.broker.set_max_clients_for_test(Some(occupancy));
    s
}

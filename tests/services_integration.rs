//! The substrate services composed over the live overlay: compressed +
//! fragmented bulk transfer through brokers, reliable delivery across a
//! lossy WAN path, and replay for late joiners.

use std::time::Duration;

use nb::broker::{BrokerActor, BrokerConfig, PubSubClient};
use nb::net::{impl_actor_any, Actor, ClockProfile, Context, Incoming, LinkSpec, Sim};
use nb::services::compress::{compress_payload, decompress_payload};
use nb::services::fragment::{fragment_payload, Fragment, Reassembler};
use nb::services::replay::ReplayService;
use nb::services::{ReliableReceiver, ReliableSender};
use nb::util::Uuid;
use nb::wire::addr::well_known;
use nb::wire::{Endpoint, Event, Message, NodeId, Port, RealmId, Topic, TopicFilter, Wire};

fn quiet_sim(seed: u64) -> Sim {
    let mut sim = Sim::with_clock_profile(seed, ClockProfile::perfect());
    sim.network_mut().intra_realm_spec = LinkSpec::lan().with_loss(0.0);
    sim.network_mut().inter_realm_spec = LinkSpec::wan(Duration::from_millis(12)).with_loss(0.0);
    sim
}

#[test]
fn compressed_fragmented_bulk_transfer_over_the_overlay() {
    let mut sim = quiet_sim(71);
    let a = sim.add_node("a", RealmId(0), Box::new(BrokerActor::new(BrokerConfig::default())));
    let b = sim.add_node(
        "b",
        RealmId(1),
        Box::new(BrokerActor::new(BrokerConfig {
            neighbors: vec![a],
            ..BrokerConfig::default()
        })),
    );
    let filter = TopicFilter::parse("bulk/**").unwrap();
    let rx = sim.add_node("rx", RealmId(1), Box::new(PubSubClient::new(b, vec![filter])));
    let tx = sim.add_node("tx", RealmId(0), Box::new(PubSubClient::new(a, vec![])));
    sim.run_for(Duration::from_secs(3));

    // A large, compressible dataset: compress, then fragment to 1 KiB
    // chunks, publishing each chunk as its own event.
    let dataset = b"field,value\ntemperature,21.5\npressure,101.3\n".repeat(800);
    let envelope = compress_payload(&dataset);
    assert!(envelope.len() < dataset.len() / 2, "dataset should compress well");
    let frags = fragment_payload(Uuid::from_u128(99), &envelope, 1024);
    let n_frags = frags.len();
    assert!(n_frags > 3, "need a real multi-fragment transfer");
    {
        let sender = sim.actor_mut::<PubSubClient>(tx).unwrap();
        for f in frags {
            sender.queue_publish(Topic::parse("bulk/dataset").unwrap(), f.to_bytes().to_vec());
        }
    }
    sim.run_for(Duration::from_secs(5));

    let receiver = sim.actor::<PubSubClient>(rx).unwrap();
    assert_eq!(receiver.received.len(), n_frags, "every fragment-event arrived");
    let mut reassembler = Reassembler::new(Duration::from_secs(60), 8);
    let mut rebuilt = None;
    for ev in &receiver.received {
        let frag = Fragment::from_bytes(&ev.payload).expect("valid fragment");
        if let Some(payload) = reassembler.accept(frag, sim.now()) {
            rebuilt = Some(payload);
        }
    }
    let rebuilt = rebuilt.expect("dataset reassembled");
    assert_eq!(decompress_payload(&rebuilt).unwrap(), dataset);
}

/// An actor streaming payloads reliably to a peer over a lossy UDP path.
struct ReliablePipe {
    tx: Option<ReliableSender>,
    rx: ReliableReceiver,
    payloads_to_send: Vec<Vec<u8>>,
    received: Vec<nb::wire::Bytes>,
}

impl Actor for ReliablePipe {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        if self.tx.is_some() {
            ctx.set_timer(Duration::from_millis(20), 1);
        }
    }
    fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
        if let Some(tx) = &mut self.tx {
            if tx.handle(&event, ctx) {
                return;
            }
        }
        self.received.extend(self.rx.handle(&event, ctx));
        if let Incoming::Timer { token: 1 } = event {
            if let (Some(tx), Some(payload)) =
                (self.tx.as_mut(), self.payloads_to_send.pop())
            {
                tx.send(payload, ctx);
                ctx.set_timer(Duration::from_millis(20), 1);
            }
        }
    }
    impl_actor_any!();
}

#[test]
fn reliable_channel_carries_fragments_across_a_lossy_wan() {
    const CHAN: Uuid = Uuid::from_u128(0xBEEF);
    const PORT: Port = Port(7100);
    let mut sim = quiet_sim(72);
    // 20% loss across the WAN path.
    sim.network_mut().inter_realm_spec =
        LinkSpec::wan(Duration::from_millis(12)).with_loss(0.2);

    let receiver_node = sim.add_node(
        "rx",
        RealmId(1),
        Box::new(ReliablePipe {
            tx: None,
            rx: ReliableReceiver::new(CHAN, PORT),
            payloads_to_send: vec![],
            received: vec![],
        }),
    );
    // Ship a fragmented dataset, newest-first pop order => reverse now.
    let dataset: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    let mut payloads: Vec<Vec<u8>> =
        fragment_payload(Uuid::from_u128(1), &dataset, 2048)
            .into_iter()
            .map(|f| f.to_bytes().to_vec())
            .collect();
    payloads.reverse(); // popped from the back while sending
    let n = payloads.len();
    let _sender_node = sim.add_node(
        "tx",
        RealmId(0),
        Box::new(ReliablePipe {
            tx: Some(ReliableSender::new(
                CHAN,
                Endpoint::new(receiver_node, PORT),
                PORT,
                Duration::from_millis(100),
                2,
            )),
            rx: ReliableReceiver::new(Uuid::from_u128(0), PORT),
            payloads_to_send: payloads,
            received: vec![],
        }),
    );
    sim.run_for(Duration::from_secs(30));
    let rx = sim.actor::<ReliablePipe>(receiver_node).unwrap();
    assert_eq!(rx.received.len(), n, "all fragments delivered despite 20% loss");
    let mut reassembler = Reassembler::new(Duration::from_secs(600), 4);
    let mut rebuilt = None;
    for payload in &rx.received {
        let frag = Fragment::from_bytes(payload).unwrap();
        if let Some(p) = reassembler.accept(frag, sim.now()) {
            rebuilt = Some(p);
        }
    }
    assert_eq!(rebuilt.expect("reassembled"), dataset);
}

/// A publisher actor that records everything it publishes into a replay
/// service and answers replay requests.
struct ReplayPublisher {
    service: ReplayService,
    to_publish: Vec<(Topic, Vec<u8>)>,
}

impl Actor for ReplayPublisher {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        // "Publish" locally: record into the store (this node acts as the
        // event source of record).
        for (topic, payload) in self.to_publish.drain(..) {
            let ev = Event {
                id: Uuid::random(ctx.rng()),
                topic,
                source: ctx.me(),
                payload: payload.into(),
            };
            self.service.store.record(ev);
        }
    }
    fn on_incoming(&mut self, event: Incoming, ctx: &mut dyn Context) {
        self.service.handle(&event, ctx);
    }
    impl_actor_any!();
}

/// A late joiner that asks for a replay and records what arrives.
struct LateJoiner {
    publisher: NodeId,
    got: Vec<Event>,
}

impl Actor for LateJoiner {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        let req = Message::ReplayRequest {
            filter: TopicFilter::parse("metrics/**").unwrap(),
            limit: 3,
            reply_to: Endpoint::new(ctx.me(), well_known::BROKER),
        };
        ctx.send_udp(well_known::BROKER, Endpoint::new(self.publisher, well_known::BROKER), &req);
    }
    fn on_incoming(&mut self, event: Incoming, _ctx: &mut dyn Context) {
        if let Incoming::Datagram { msg, .. } = event {
            if let Message::Publish(ev) = msg.into_message() {
                self.got.push(ev);
            }
        }
    }
    impl_actor_any!();
}

#[test]
fn late_joiner_replays_recent_events() {
    let mut sim = quiet_sim(73);
    let to_publish: Vec<(Topic, Vec<u8>)> = (0..6u8)
        .map(|i| (Topic::parse("metrics/cpu").unwrap(), vec![i]))
        .chain(std::iter::once((Topic::parse("other/x").unwrap(), vec![99])))
        .collect();
    let publisher = sim.add_node(
        "pub",
        RealmId(0),
        Box::new(ReplayPublisher { service: ReplayService::new(16), to_publish }),
    );
    sim.run_for(Duration::from_secs(1));
    let late = sim.add_node("late", RealmId(0), Box::new(LateJoiner { publisher, got: vec![] }));
    sim.run_for(Duration::from_secs(2));
    let joiner = sim.actor::<LateJoiner>(late).unwrap();
    // limit=3 keeps the newest three matching events. They travel as
    // independent UDP datagrams, so arrival order is not guaranteed.
    assert_eq!(joiner.got.len(), 3);
    let mut payloads: Vec<u8> = joiner.got.iter().map(|e| e.payload[0]).collect();
    payloads.sort_unstable();
    assert_eq!(payloads, vec![3, 4, 5]);
    let service = &sim.actor::<ReplayPublisher>(publisher).unwrap().service;
    assert_eq!(service.requests_served, 1);
    assert_eq!(service.events_replayed, 3);
}

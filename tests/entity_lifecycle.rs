//! The full entity life cycle over the simulator: discover → attach →
//! pub/sub → broker failure → rediscover → resume, and the services
//! composition (replay after reattachment).

use std::time::Duration;

use nb::broker::{BrokerConfig, MachineProfile};
use nb::discovery::bdn::{Bdn, BdnConfig};
use nb::discovery::{
    DiscoveryBrokerActor, DiscoveryConfig, Entity, EntityState, ResponsePolicy,
};
use nb::net::{ClockProfile, LinkSpec, Sim};
use nb::wire::{NodeId, RealmId, Topic, TopicFilter};

struct World {
    sim: Sim,
    bdn: NodeId,
    brokers: Vec<NodeId>,
}

fn world(seed: u64, n_brokers: usize) -> World {
    let mut sim = Sim::with_clock_profile(seed, ClockProfile::perfect());
    sim.network_mut().intra_realm_spec = LinkSpec::lan().with_loss(0.0);
    sim.network_mut().inter_realm_spec =
        LinkSpec::wan(Duration::from_millis(8)).with_loss(0.0);
    let bdn = sim.add_node("bdn", RealmId(0), Box::new(Bdn::new(BdnConfig::default())));
    let mut brokers = Vec::new();
    for i in 0..n_brokers {
        let neighbors = if i == 0 { vec![] } else { vec![brokers[0]] };
        let cfg = BrokerConfig {
            hostname: format!("b{i}.local"),
            machine: MachineProfile::default_2005(),
            neighbors,
            ..BrokerConfig::default()
        };
        let actor = DiscoveryBrokerActor::new(cfg, vec![bdn], ResponsePolicy::open());
        brokers.push(sim.add_node(&format!("b{i}"), RealmId(0), Box::new(actor)));
    }
    World { sim, bdn, brokers }
}

fn entity_cfg(bdn: NodeId, max_responses: usize) -> DiscoveryConfig {
    DiscoveryConfig {
        bdns: vec![bdn],
        collection_window: Duration::from_millis(1200),
        max_responses,
        ping_window: Duration::from_millis(400),
        ack_timeout: Duration::from_millis(500),
        ..DiscoveryConfig::default()
    }
}

#[test]
fn entity_discovers_attaches_and_exchanges_events() {
    let mut w = world(61, 2);
    let filter = TopicFilter::parse("telemetry/**").unwrap();
    let subscriber = w.sim.add_node(
        "sub",
        RealmId(0),
        Box::new(Entity::new(entity_cfg(w.bdn, 2), vec![filter])),
    );
    let publisher =
        w.sim.add_node("pub", RealmId(0), Box::new(Entity::new(entity_cfg(w.bdn, 2), vec![])));
    w.sim.run_for(Duration::from_secs(5));
    assert!(matches!(
        w.sim.actor::<Entity>(subscriber).unwrap().state(),
        EntityState::Attached(_)
    ));
    assert!(matches!(
        w.sim.actor::<Entity>(publisher).unwrap().state(),
        EntityState::Attached(_)
    ));
    // Publish through the publisher's broker; routing crosses the overlay
    // if the two entities attached to different brokers.
    for i in 0..5u8 {
        w.sim
            .actor_mut::<Entity>(publisher)
            .unwrap()
            .queue_publish(Topic::parse("telemetry/cpu").unwrap(), vec![i]);
    }
    w.sim.run_for(Duration::from_secs(3));
    let sub = w.sim.actor::<Entity>(subscriber).unwrap();
    assert_eq!(sub.received.len(), 5, "every event delivered");
    let pub_ = w.sim.actor::<Entity>(publisher).unwrap();
    assert_eq!(pub_.published, 5);
}

#[test]
fn entity_fails_over_when_its_broker_dies() {
    let mut w = world(62, 2);
    let filter = TopicFilter::parse("news/**").unwrap();
    let subscriber = w.sim.add_node(
        "sub",
        RealmId(0),
        Box::new(Entity::new(entity_cfg(w.bdn, 2), vec![filter])),
    );
    let publisher =
        w.sim.add_node("pub", RealmId(0), Box::new(Entity::new(entity_cfg(w.bdn, 2), vec![])));
    w.sim.run_for(Duration::from_secs(5));
    let first_broker = w.sim.actor::<Entity>(subscriber).unwrap().broker().expect("attached");

    // Kill the subscriber's broker; keepalives (2s × 3 misses) notice.
    w.sim.crash(first_broker);
    w.sim.run_for(Duration::from_secs(30));
    let entity = w.sim.actor::<Entity>(subscriber).unwrap();
    assert!(entity.failovers >= 1, "keepalive loss must trigger failover");
    let second_broker = entity.broker().expect("reattached");
    assert_ne!(second_broker, first_broker, "attached to the survivor");
    assert_eq!(entity.attachments.len(), 2);

    // Subscriptions resumed: a fresh publish still reaches it. The
    // publisher may share the dead broker — check and let it fail over
    // too before publishing.
    w.sim.run_for(Duration::from_secs(10));
    w.sim
        .actor_mut::<Entity>(publisher)
        .unwrap()
        .queue_publish(Topic::parse("news/world").unwrap(), vec![7]);
    w.sim.run_for(Duration::from_secs(5));
    let sub = w.sim.actor::<Entity>(subscriber).unwrap();
    assert_eq!(sub.received.len(), 1, "subscription survived the failover");
}

#[test]
fn stranded_entity_retries_and_recovers() {
    let mut w = world(63, 1);
    // Everything is down from the start.
    let broker = w.brokers[0];
    w.sim.crash(broker);
    w.sim.crash(w.bdn);
    let mut cfg = entity_cfg(w.bdn, 1);
    cfg.retransmits_per_bdn = 1;
    cfg.collection_window = Duration::from_millis(600);
    cfg.ping_window = Duration::from_millis(300);
    let entity_node = w.sim.add_node("e", RealmId(0), Box::new(Entity::new(cfg, vec![])));
    w.sim.run_for(Duration::from_secs(8));
    // At this point the entity is either stranded (between backoff
    // retries) or mid-retry — never attached.
    let state = w.sim.actor::<Entity>(entity_node).unwrap().state();
    assert!(
        matches!(state, EntityState::Stranded | EntityState::Discovering),
        "must not be attached during the outage, got {state:?}"
    );
    assert!(w.sim.actor::<Entity>(entity_node).unwrap().discovery().runs_started >= 1);

    // The infrastructure returns; the backoff retry must find it.
    w.sim.revive(broker);
    w.sim.revive(w.bdn);
    w.sim.run_for(Duration::from_secs(40));
    let entity = w.sim.actor::<Entity>(entity_node).unwrap();
    assert!(
        matches!(entity.state(), EntityState::Attached(_)),
        "recovered after the outage, state {:?} (runs {})",
        entity.state(),
        entity.discovery().runs_started
    );
}

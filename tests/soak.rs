//! Soak test: a large, churning deployment end to end. 30 brokers on a
//! random overlay, a BDN, 12 entities publishing and subscribing, five
//! broker crashes mid-run — every surviving entity must end attached and
//! still receiving events.

use std::time::Duration;

use nb::broker::{BrokerConfig, MachineProfile, Topology};
use nb::discovery::bdn::{Bdn, BdnConfig};
use nb::discovery::{DiscoveryBrokerActor, DiscoveryConfig, Entity, ResponsePolicy};
use nb::net::{ClockProfile, LinkSpec, Sim};
use nb::wire::{NodeId, RealmId, Topic, TopicFilter};

const N_BROKERS: usize = 30;
const N_ENTITIES: usize = 12;

#[test]
fn large_churning_overlay_keeps_every_entity_attached() {
    let mut sim = Sim::with_clock_profile(2005, ClockProfile::perfect());
    sim.network_mut().intra_realm_spec = LinkSpec::lan().with_loss(0.0005);
    sim.network_mut().inter_realm_spec =
        LinkSpec::wan(Duration::from_millis(10)).with_loss(0.001);

    let bdn = sim.add_node("bdn", RealmId(0), Box::new(Bdn::new(BdnConfig::default())));

    // Random connected overlay with some chords, brokers spread over 3
    // realms.
    let topo = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        Topology::random(N_BROKERS, 8, &mut rng)
    };
    let mut brokers: Vec<NodeId> = Vec::new();
    for (i, dials) in topo.dial_lists().into_iter().enumerate() {
        let neighbors = dials.iter().map(|&j| brokers[j]).collect();
        let cfg = BrokerConfig {
            hostname: format!("b{i}"),
            machine: MachineProfile::default_2005(),
            neighbors,
            ..BrokerConfig::default()
        };
        let actor = DiscoveryBrokerActor::new(cfg, vec![bdn], ResponsePolicy::open());
        brokers.push(sim.add_node(
            &format!("b{i}"),
            RealmId((i % 3) as u16),
            Box::new(actor),
        ));
    }

    let cfg = DiscoveryConfig {
        bdns: vec![bdn],
        collection_window: Duration::from_millis(1500),
        max_responses: 10,
        target_set_size: 5,
        ping_window: Duration::from_millis(500),
        ack_timeout: Duration::from_millis(600),
        ..DiscoveryConfig::default()
    };
    let filter = TopicFilter::parse("soak/**").unwrap();
    let entities: Vec<NodeId> = (0..N_ENTITIES)
        .map(|i| {
            sim.add_node(
                &format!("e{i}"),
                RealmId((i % 3) as u16),
                Box::new(Entity::new(cfg.clone(), vec![filter.clone()])),
            )
        })
        .collect();

    // Everyone discovers and attaches.
    sim.run_for(Duration::from_secs(10));
    for &e in &entities {
        assert!(
            sim.actor::<Entity>(e).unwrap().broker().is_some(),
            "{} attached",
            sim.node_name(e)
        );
    }

    // A round of traffic: entity 0 publishes, all others receive.
    sim.actor_mut::<Entity>(entities[0])
        .unwrap()
        .queue_publish(Topic::parse("soak/round/1").unwrap(), vec![1]);
    sim.run_for(Duration::from_secs(5));
    for &e in &entities[1..] {
        assert_eq!(
            sim.actor::<Entity>(e).unwrap().received.len(),
            1,
            "{} got round 1",
            sim.node_name(e)
        );
    }

    // Crash five brokers, including some that entities are attached to.
    let mut victims: Vec<NodeId> = entities
        .iter()
        .take(3)
        .filter_map(|&e| sim.actor::<Entity>(e).unwrap().broker())
        .collect();
    victims.push(brokers[0]);
    victims.push(brokers[N_BROKERS - 1]);
    victims.sort_unstable();
    victims.dedup();
    for &v in &victims {
        sim.crash(v);
    }
    // Let heartbeats tear down links, keepalives notice, entities
    // rediscover, and the BDN expire nothing yet (TTL 300s).
    sim.run_for(Duration::from_secs(60));

    for &e in &entities {
        let entity = sim.actor::<Entity>(e).unwrap();
        let broker = entity.broker().unwrap_or_else(|| {
            panic!("{} must be reattached, state {:?}", sim.node_name(e), entity.state())
        });
        assert!(!victims.contains(&broker), "{} attached to a corpse", sim.node_name(e));
    }

    // Crashing five brokers may have split the overlay (links are not
    // self-healing): a second round of traffic must reach exactly the
    // entities whose brokers share the publisher's surviving component.
    let component_of = |start: NodeId| -> Vec<NodeId> {
        let idx_of = |n: NodeId| brokers.iter().position(|&b| b == n);
        let Some(start_idx) = idx_of(start) else { return vec![] };
        let mut seen = [false; N_BROKERS];
        let mut stack = vec![start_idx];
        seen[start_idx] = true;
        while let Some(i) = stack.pop() {
            for nb in topo.neighbors(i) {
                if !seen[nb] && !victims.contains(&brokers[nb]) {
                    seen[nb] = true;
                    stack.push(nb);
                }
            }
        }
        (0..N_BROKERS).filter(|&i| seen[i]).map(|i| brokers[i]).collect()
    };
    let pub_broker = sim.actor::<Entity>(entities[0]).unwrap().broker().unwrap();
    let reachable = component_of(pub_broker);
    sim.actor_mut::<Entity>(entities[0])
        .unwrap()
        .queue_publish(Topic::parse("soak/round/2").unwrap(), vec![2]);
    sim.run_for(Duration::from_secs(8));
    let mut in_component = 0;
    for &e in &entities[1..] {
        let entity = sim.actor::<Entity>(e).unwrap();
        let broker = entity.broker().unwrap();
        let got = entity.received.len();
        if reachable.contains(&broker) {
            in_component += 1;
            assert_eq!(got, 2, "{} shares the component; must get round 2", sim.node_name(e));
        } else {
            assert_eq!(got, 1, "{} is partitioned away; round 2 cannot arrive", sim.node_name(e));
        }
    }
    assert!(in_component >= 1, "the component must contain other entities");

    // Sanity on the system's bookkeeping.
    let stats = sim.stats();
    assert!(stats.datagrams_delivered > 100);
    assert!(stats.stream_delivered > 100);
    assert!(stats.dropped_node_down > 0, "crashes produced drops");
}

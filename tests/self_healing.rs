//! Overlay self-healing: a partitioned broker rediscovers its way back
//! into the network (§8.3's "incorporation of brokers" applied to
//! partition repair).

use std::time::Duration;

use nb::broker::{BrokerConfig, MachineProfile, PubSubClient};
use nb::discovery::bdn::{Bdn, BdnConfig};
use nb::discovery::{DiscoveryConfig, JoiningBroker, ResponsePolicy};
use nb::net::{ClockProfile, LinkSpec, Sim};
use nb::wire::{NodeId, RealmId, Topic, TopicFilter};

fn discovery_cfg(bdn: NodeId) -> DiscoveryConfig {
    DiscoveryConfig {
        bdns: vec![bdn],
        collection_window: Duration::from_millis(1200),
        max_responses: 3,
        ping_window: Duration::from_millis(400),
        ack_timeout: Duration::from_millis(500),
        ..DiscoveryConfig::default()
    }
}

#[test]
fn partitioned_brokers_relink_through_discovery() {
    let mut sim = Sim::with_clock_profile(91, ClockProfile::perfect());
    sim.network_mut().intra_realm_spec = LinkSpec::lan().with_loss(0.0);
    let bdn = sim.add_node("bdn", RealmId(0), Box::new(Bdn::new(BdnConfig::default())));

    // A chain built from joining brokers: anchor <- mid <- edge. Each
    // joins by discovery, so the chain assembles itself.
    let mk = |name: &str, bdn| {
        Box::new(JoiningBroker::new(
            BrokerConfig {
                hostname: name.to_string(),
                machine: MachineProfile::default_2005(),
                ..BrokerConfig::default()
            },
            vec![bdn],
            ResponsePolicy::open(),
            discovery_cfg(bdn),
        ))
    };
    let anchor = sim.add_node("anchor", RealmId(0), mk("anchor", bdn));
    sim.run_for(Duration::from_secs(2));
    let mid = sim.add_node("mid", RealmId(0), mk("mid", bdn));
    sim.run_for(Duration::from_secs(6));
    let edge = sim.add_node("edge", RealmId(0), mk("edge", bdn));
    sim.run_for(Duration::from_secs(8));

    // All three are in one component (each joined *somebody*).
    for (n, label) in [(mid, "mid"), (edge, "edge")] {
        assert!(sim.actor::<JoiningBroker>(n).unwrap().joined(), "{label} joined");
    }

    // Find a broker whose death would hurt, and kill it: crash whichever
    // broker `edge` is linked to (its only connection if the chain formed
    // linearly). If edge linked straight to anchor, crash anchor instead.
    let edge_peer = sim.actor::<JoiningBroker>(edge).unwrap().joined_to.unwrap();
    sim.crash(edge_peer);
    // Heartbeats (2s × 3) notice, the heal timer (5s) fires, discovery
    // runs against the survivors.
    sim.run_for(Duration::from_secs(40));

    let survivors: Vec<NodeId> =
        [anchor, mid, edge].into_iter().filter(|&n| n != edge_peer).collect();
    assert_eq!(survivors.len(), 2);
    let healer = sim.actor::<JoiningBroker>(edge).unwrap();
    assert!(healer.heals >= 1, "edge must have healed (heals = {})", healer.heals);
    assert!(
        healer.inner.broker.num_links() >= 1,
        "edge re-linked (links = {})",
        healer.inner.broker.num_links()
    );
    let new_peer = healer.joined_to.expect("rejoined");
    assert_ne!(new_peer, edge_peer, "not the corpse");

    // Pub/sub works across the healed overlay: a client on each survivor.
    let filter = TopicFilter::parse("healed/**").unwrap();
    let sub = sim.add_node(
        "sub",
        RealmId(0),
        Box::new(PubSubClient::new(survivors[0], vec![filter])),
    );
    let publisher =
        sim.add_node("pub", RealmId(0), Box::new(PubSubClient::new(survivors[1], vec![])));
    sim.run_for(Duration::from_secs(2));
    sim.actor_mut::<PubSubClient>(publisher)
        .unwrap()
        .queue_publish(Topic::parse("healed/ok").unwrap(), vec![1]);
    sim.run_for(Duration::from_secs(3));
    assert_eq!(
        sim.actor::<PubSubClient>(sub).unwrap().received.len(),
        1,
        "traffic flows across the healed link"
    );
}

#[test]
fn healing_survives_a_failed_attempt() {
    // Regression: a heal attempt that fails (every path down) must not
    // permanently disable healing — once the infrastructure returns, the
    // broker re-links.
    let mut sim = Sim::with_clock_profile(92, ClockProfile::perfect());
    sim.network_mut().intra_realm_spec = LinkSpec::lan().with_loss(0.0);
    let bdn = sim.add_node("bdn", RealmId(0), Box::new(Bdn::new(BdnConfig::default())));
    let anchor = sim.add_node(
        "anchor",
        RealmId(0),
        Box::new(JoiningBroker::new(
            BrokerConfig { hostname: "anchor".into(), ..BrokerConfig::default() },
            vec![bdn],
            ResponsePolicy::open(),
            discovery_cfg(bdn),
        )),
    );
    sim.run_for(Duration::from_secs(2));
    let mut cfg = discovery_cfg(bdn);
    cfg.ack_timeout = Duration::from_millis(300);
    cfg.retransmits_per_bdn = 1;
    cfg.collection_window = Duration::from_millis(600);
    cfg.ping_window = Duration::from_millis(300);
    let edge = sim.add_node(
        "edge",
        RealmId(0),
        Box::new(JoiningBroker::new(
            BrokerConfig { hostname: "edge".into(), ..BrokerConfig::default() },
            vec![bdn],
            ResponsePolicy::open(),
            cfg,
        )),
    );
    sim.run_for(Duration::from_secs(6));
    assert!(sim.actor::<JoiningBroker>(edge).unwrap().joined(), "initial join");

    // Total blackout: both the anchor and the BDN die. The edge's heal
    // attempts all fail.
    sim.crash(anchor);
    sim.crash(bdn);
    sim.run_for(Duration::from_secs(60));
    {
        let e = sim.actor::<JoiningBroker>(edge).unwrap();
        assert!(e.heals >= 1, "healing attempted during the blackout");
        assert!(!e.joined(), "nothing to join during the blackout");
    }

    // The infrastructure returns; a later heal round must succeed.
    sim.revive(anchor);
    sim.revive(bdn);
    sim.run_for(Duration::from_secs(180)); // re-advertisement (120s) + heal ticks
    let e = sim.actor::<JoiningBroker>(edge).unwrap();
    assert!(
        e.joined(),
        "healing must recover after a failed attempt (heals = {}, finder {:?})",
        e.heals,
        e.finder().phase()
    );
    assert!(e.inner.broker.num_links() >= 1);
}

//! The pub/sub substrate at scale: routing correctness over larger and
//! randomly shaped overlays, advertisement dissemination over the
//! well-known topic, and private-BDN bootstrap (§2.3, §2.4).

use std::time::Duration;

use nb::broker::{BrokerActor, BrokerConfig, PubSubClient, Topology, TopologyKind};
use nb::discovery::bdn::{Bdn, BdnConfig};
use nb::discovery::{DiscoveryBrokerActor, ResponsePolicy};
use nb::net::{ClockProfile, LinkSpec, Sim};
use nb::wire::{NodeId, RealmId, Topic, TopicFilter};

fn quiet_sim(seed: u64) -> Sim {
    let mut sim = Sim::with_clock_profile(seed, ClockProfile::perfect());
    sim.network_mut().intra_realm_spec = LinkSpec::lan().with_loss(0.0);
    sim.network_mut().inter_realm_spec = LinkSpec::wan(Duration::from_millis(10)).with_loss(0.0);
    sim
}

fn build_overlay(sim: &mut Sim, topo: &Topology) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = Vec::new();
    for (i, dials) in topo.dial_lists().into_iter().enumerate() {
        let neighbors = dials.iter().map(|&j| ids[j]).collect();
        let cfg = BrokerConfig { neighbors, ..BrokerConfig::default() };
        ids.push(sim.add_node(&format!("b{i}"), RealmId(0), Box::new(BrokerActor::new(cfg))));
    }
    ids
}

#[test]
fn exactly_once_delivery_across_a_random_overlay() {
    let mut sim = quiet_sim(31);
    let topo = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        Topology::random(20, 6, &mut rng) // spanning tree + 6 chords (cycles!)
    };
    assert!(topo.is_connected());
    let brokers = build_overlay(&mut sim, &topo);

    // One subscriber per broker, one publisher at broker 0.
    let filter = TopicFilter::parse("telemetry/**").unwrap();
    let subs: Vec<NodeId> = brokers
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            sim.add_node(
                &format!("sub{i}"),
                RealmId(0),
                Box::new(PubSubClient::new(b, vec![filter.clone()])),
            )
        })
        .collect();
    let publisher =
        sim.add_node("pub", RealmId(0), Box::new(PubSubClient::new(brokers[0], vec![])));
    // Let links + subscription propagation settle across 20 brokers.
    sim.run_for(Duration::from_secs(5));

    for i in 0..10 {
        sim.actor_mut::<PubSubClient>(publisher)
            .unwrap()
            .queue_publish(Topic::parse("telemetry/cpu").unwrap(), vec![i]);
    }
    sim.run_for(Duration::from_secs(5));

    for (i, &sub) in subs.iter().enumerate() {
        let client = sim.actor::<PubSubClient>(sub).unwrap();
        assert_eq!(
            client.received.len(),
            10,
            "subscriber {i} must receive each event exactly once"
        );
    }
    // The chords created duplicate paths; dedup must have fired somewhere.
    let dupes: u64 = brokers
        .iter()
        .map(|&b| sim.actor::<BrokerActor>(b).unwrap().broker.duplicates_suppressed)
        .sum();
    assert!(dupes > 0, "cyclic overlay must exercise duplicate suppression");
}

#[test]
fn unsubscribe_stops_delivery_overlay_wide() {
    let mut sim = quiet_sim(32);
    let topo = Topology::build(TopologyKind::Linear, 4);
    let brokers = build_overlay(&mut sim, &topo);
    let filter = TopicFilter::parse("news/*").unwrap();
    let sub = sim.add_node(
        "sub",
        RealmId(0),
        Box::new(PubSubClient::new(brokers[3], vec![filter.clone()])),
    );
    let publisher =
        sim.add_node("pub", RealmId(0), Box::new(PubSubClient::new(brokers[0], vec![])));
    sim.run_for(Duration::from_secs(3));

    sim.actor_mut::<PubSubClient>(publisher)
        .unwrap()
        .queue_publish(Topic::parse("news/world").unwrap(), vec![1]);
    sim.run_for(Duration::from_secs(2));
    assert_eq!(sim.actor::<PubSubClient>(sub).unwrap().received.len(), 1);

    // Unsubscribe: deliver a ClientUnsubscribe to the subscriber's broker
    // as if it came from the subscriber's connection.
    use nb::net::Incoming;
    use nb::wire::{Endpoint, Message};
    sim.inject(
        brokers[3],
        Duration::from_millis(5),
        Incoming::Stream {
            from: Endpoint::new(sub, nb::wire::addr::well_known::BROKER),
            to_port: nb::wire::addr::well_known::BROKER,
            msg: Message::ClientUnsubscribe { filter: filter.clone() }.into(),
        },
    );
    sim.run_for(Duration::from_secs(2));
    sim.actor_mut::<PubSubClient>(publisher)
        .unwrap()
        .queue_publish(Topic::parse("news/world").unwrap(), vec![2]);
    sim.run_for(Duration::from_secs(2));
    assert_eq!(
        sim.actor::<PubSubClient>(sub).unwrap().received.len(),
        1,
        "no delivery after unsubscribe"
    );
}

#[test]
fn topic_based_advertisements_reach_a_bdn_attached_elsewhere() {
    // §2.3: a broker "might send this advertisement over a public topic …
    // which all BDNs within the substrate subscribe to". The BDN attaches
    // to broker A only; broker B's topic advertisement must still arrive
    // through the overlay.
    let mut sim = quiet_sim(33);
    let a = sim.add_node(
        "a",
        RealmId(0),
        Box::new(DiscoveryBrokerActor::new(
            BrokerConfig::default(),
            vec![], // no direct BDN registration!
            ResponsePolicy::open(),
        )),
    );
    let b = sim.add_node(
        "b",
        RealmId(0),
        Box::new(DiscoveryBrokerActor::new(
            BrokerConfig { neighbors: vec![a], ..BrokerConfig::default() },
            vec![],
            ResponsePolicy::open(),
        )),
    );
    let bdn_cfg = BdnConfig {
        attached_brokers: vec![a],
        auto_attach: false,
        ..BdnConfig::default()
    };
    let bdn = sim.add_node("bdn", RealmId(0), Box::new(Bdn::new(bdn_cfg)));
    // Brokers re-advertise on ClockSynced (instant here) and every 120 s;
    // their start-up ads fired before the BDN subscribed, so wait for the
    // next periodic round.
    sim.run_for(Duration::from_secs(125));
    let bdn_actor = sim.actor::<Bdn>(bdn).unwrap();
    assert!(
        bdn_actor.registered(b).is_some(),
        "broker B advertised over the topic and through the overlay \
         (registry has {} brokers)",
        bdn_actor.registry_len()
    );
}

#[test]
fn geography_filtered_bdn_ignores_other_regions() {
    // §2.3: "a BDN in the US may be interested only in broker additions
    // in North America".
    let mut sim = quiet_sim(34);
    let bdn_cfg = BdnConfig {
        accept_geography: Some("USA".into()),
        auto_attach: false,
        ..BdnConfig::default()
    };
    let bdn = sim.add_node("bdn", RealmId(0), Box::new(Bdn::new(bdn_cfg)));
    let mk = |name: &str, geography: &str, bdn| {
        let mut actor = DiscoveryBrokerActor::new(
            BrokerConfig { hostname: name.into(), ..BrokerConfig::default() },
            vec![bdn],
            ResponsePolicy::open(),
        );
        actor.advertiser.geography = Some(geography.to_string());
        Box::new(actor)
    };
    let us = sim.add_node("us", RealmId(1), mk("us.host", "Indianapolis, IN, USA", bdn));
    let uk = sim.add_node("uk", RealmId(2), mk("uk.host", "Cardiff, UK", bdn));
    sim.run_for(Duration::from_secs(8));
    let bdn_actor = sim.actor::<Bdn>(bdn).unwrap();
    assert!(bdn_actor.registered(us).is_some(), "US broker accepted");
    assert!(bdn_actor.registered(uk).is_none(), "UK broker filtered out");
    assert!(bdn_actor.ads_filtered > 0);
}

#[test]
fn private_bdn_announcement_triggers_readvertisement() {
    // §2.4: a private BDN advertises its services on the overlay and
    // brokers re-advertise to it.
    let mut sim = quiet_sim(35);
    let public_bdn =
        sim.add_node("public-bdn", RealmId(0), Box::new(Bdn::new(BdnConfig::default())));
    let broker = sim.add_node(
        "broker",
        RealmId(0),
        Box::new(DiscoveryBrokerActor::new(
            BrokerConfig::default(),
            vec![public_bdn],
            ResponsePolicy::open(),
        )),
    );
    sim.run_for(Duration::from_secs(2));
    // The private BDN attaches to the broker and announces itself.
    let private_cfg = BdnConfig {
        attached_brokers: vec![broker],
        auto_attach: false,
        advertise_as_private: true,
        ..BdnConfig::default()
    };
    let private_bdn = sim.add_node("private-bdn", RealmId(0), Box::new(Bdn::new(private_cfg)));
    sim.run_for(Duration::from_secs(5));
    let broker_actor = sim.actor::<DiscoveryBrokerActor>(broker).unwrap();
    assert!(
        broker_actor.advertiser.discovered_bdns.contains(&private_bdn),
        "broker learned about the private BDN"
    );
    let private_actor = sim.actor::<Bdn>(private_bdn).unwrap();
    assert!(
        private_actor.registered(broker).is_some(),
        "broker re-advertised to the private BDN"
    );
}

//! The same protocol stack on real threads: proves the actors are
//! runtime-agnostic. These tests use short windows and LAN-scale
//! latencies so the suite stays fast.

use std::collections::HashMap;
use std::time::Duration;

use nb::broker::{BrokerConfig, MachineProfile};
use nb::discovery::bdn::{Bdn, BdnConfig};
use nb::discovery::client::TIMER_START;
use nb::discovery::{DiscoveryBrokerActor, DiscoveryClient, DiscoveryConfig, ResponsePolicy};
use nb::net::ntp::{NtpClientActor, NtpPhase, NtpServer};
use nb::net::{ClockProfile, Incoming, LinkSpec, ThreadedNet};
use nb::wire::{NodeId, RealmId};

fn fast_clocks() -> ClockProfile {
    ClockProfile {
        max_true_offset: Duration::from_millis(100),
        min_residual: Duration::from_millis(1),
        max_residual: Duration::from_millis(5),
        min_sync_delay: Duration::from_millis(40),
        max_sync_delay: Duration::from_millis(90),
    }
}

fn lan_net(seed: u64) -> ThreadedNet {
    let net = ThreadedNet::new(seed);
    net.configure_network(|n| {
        n.intra_realm_spec = LinkSpec::lan().with_loss(0.0);
        n.inter_realm_spec = LinkSpec::wan(Duration::from_millis(8)).with_loss(0.0);
    });
    net
}

fn discovery_cfg(bdn: NodeId, max_responses: usize) -> DiscoveryConfig {
    DiscoveryConfig {
        bdns: vec![bdn],
        collection_window: Duration::from_millis(1200),
        max_responses,
        ping_window: Duration::from_millis(400),
        ack_timeout: Duration::from_millis(600),
        ..DiscoveryConfig::default()
    }
}

fn broker_actor(name: &str, bdn: NodeId, neighbors: Vec<NodeId>) -> Box<DiscoveryBrokerActor> {
    Box::new(DiscoveryBrokerActor::new(
        BrokerConfig {
            hostname: name.to_string(),
            machine: MachineProfile::default_2005(),
            neighbors,
            ..BrokerConfig::default()
        },
        vec![bdn],
        ResponsePolicy::open(),
    ))
}

fn take_client(
    actors: &mut HashMap<NodeId, Box<dyn nb::net::Actor>>,
    id: NodeId,
) -> (Vec<nb::discovery::DiscoveryOutcome>, nb::discovery::Phase) {
    let actor = actors.remove(&id).expect("client actor present");
    let client = actor.as_any().downcast_ref::<DiscoveryClient>().expect("is a DiscoveryClient");
    (client.completed.clone(), client.phase())
}

#[test]
fn full_discovery_over_threads() {
    let mut net = lan_net(41);
    let realm = RealmId(0);
    let bdn = net.add_node("bdn", realm, fast_clocks(), Box::new(Bdn::new(BdnConfig::default())));
    let b0 = net.add_node("b0", realm, fast_clocks(), broker_actor("b0.local", bdn, vec![]));
    let _b1 = net.add_node("b1", realm, fast_clocks(), broker_actor("b1.local", bdn, vec![b0]));
    let client = net.add_node(
        "client",
        realm,
        fast_clocks(),
        Box::new(DiscoveryClient::with_auto_start(discovery_cfg(bdn, 2), false)),
    );
    // Clocks sync within ~100ms; brokers advertise on start and on sync.
    std::thread::sleep(Duration::from_millis(400));
    net.inject(client, Incoming::Timer { token: TIMER_START });
    std::thread::sleep(Duration::from_secs(3));
    let stats = net.stats();
    assert!(stats.datagrams_delivered > 0, "discovery traffic crossed the wire thread");
    assert!(stats.by_kind.contains_key("discovery-request"));
    assert!(stats.by_kind.contains_key("discovery-response"));
    assert!(stats.bytes_delivered > 0);
    let mut actors = net.shutdown();
    let (completed, phase) = take_client(&mut actors, client);
    assert_eq!(completed.len(), 1, "one discovery completed (phase {phase:?})");
    let outcome = &completed[0];
    assert!(outcome.chosen.is_some(), "threaded discovery succeeds");
    assert_eq!(outcome.responses_received, 2, "both brokers answered");
    assert!(!outcome.used_multicast);
}

#[test]
fn multicast_fallback_over_threads() {
    let mut net = lan_net(42);
    let realm = RealmId(0);
    // The configured BDN simply does not exist as a reachable service:
    // use an unregistered node id so every send is dropped.
    let ghost_bdn = NodeId(999);
    let bdn_for_brokers =
        net.add_node("bdn", realm, fast_clocks(), Box::new(Bdn::new(BdnConfig::default())));
    let _b0 =
        net.add_node("b0", realm, fast_clocks(), broker_actor("b0.local", bdn_for_brokers, vec![]));
    let mut cfg = discovery_cfg(ghost_bdn, 1);
    cfg.retransmits_per_bdn = 1;
    cfg.ack_timeout = Duration::from_millis(250);
    let client = net.add_node(
        "client",
        realm,
        fast_clocks(),
        Box::new(DiscoveryClient::with_auto_start(cfg, false)),
    );
    std::thread::sleep(Duration::from_millis(300));
    net.inject(client, Incoming::Timer { token: TIMER_START });
    std::thread::sleep(Duration::from_secs(4));
    let mut actors = net.shutdown();
    let (completed, _) = take_client(&mut actors, client);
    assert_eq!(completed.len(), 1);
    assert!(completed[0].used_multicast, "fallback must engage");
    assert!(completed[0].chosen.is_some(), "the lab broker answers via multicast");
}

#[test]
fn ntp_protocol_over_threads() {
    // Unsynced-by-model clocks (huge modeled sync delay) with a real NTP
    // exchange doing the work instead.
    let profile = ClockProfile {
        max_true_offset: Duration::from_millis(500),
        min_residual: Duration::ZERO,
        max_residual: Duration::ZERO,
        min_sync_delay: Duration::from_secs(3600),
        max_sync_delay: Duration::from_secs(3600),
    };
    let mut net = ThreadedNet::new(43);
    net.configure_network(|n| {
        n.inter_realm_spec = LinkSpec::wan(Duration::from_millis(5)).with_loss(0.0);
    });
    let server =
        net.add_node("time", RealmId(0), ClockProfile::perfect(), Box::new(NtpServer::default()));
    let client = net.add_node("c", RealmId(1), profile, Box::new(NtpClientActor::new(server)));
    std::thread::sleep(Duration::from_secs(2));
    let true_now = net.now();
    let utc = net.utc_of(client).expect("client clock");
    let mut actors = net.shutdown();
    let actor = actors.remove(&client).unwrap();
    let ntp = actor.as_any().downcast_ref::<NtpClientActor>().unwrap();
    assert_eq!(ntp.client.phase, NtpPhase::Done, "protocol completed");
    let err_us =
        (utc as i64 - nb::net::time::true_utc_micros(true_now) as i64).unsigned_abs();
    assert!(err_us <= 20_000, "residual {err_us}µs within the paper's band");
}

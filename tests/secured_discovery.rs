//! The secured discovery path of §9.1: signed + encrypted discovery
//! requests between client and BDN, and the failure modes when trust is
//! misconfigured.

use std::time::Duration;

use nb::broker::TopologyKind;
use nb::discovery::bdn::Bdn;
use nb::discovery::config::SecuritySuite;
use nb::discovery::scenario::ScenarioBuilder;
use nb::net::wan::BLOOMINGTON;
use nb::security::{Authority, Identity};

use rand::rngs::StdRng;
use rand::SeedableRng;

struct Pki {
    ca: Authority,
    client: Identity,
    bdn: Identity,
}

fn pki(seed: u64) -> Pki {
    let mut rng = StdRng::seed_from_u64(seed);
    // Validity window covering the simulation's 2005-era UTC timestamps.
    let ca = Authority::new_root("GridServiceLocator Root CA", 0, u64::MAX, &mut rng);
    let client = Identity::issued_by("discovery-client", &ca, &mut rng);
    let bdn = Identity::issued_by("gridservicelocator.org", &ca, &mut rng);
    Pki { ca, client, bdn }
}

#[test]
fn secured_request_is_opened_and_served() {
    let p = pki(1);
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 51);
    builder.discovery.security = Some(SecuritySuite {
        identity: p.client.clone(),
        trust_root: p.ca.root_cert.clone(),
        peer_public: p.bdn.public(),
    });
    builder.bdn.security = Some(SecuritySuite {
        identity: p.bdn.clone(),
        trust_root: p.ca.root_cert.clone(),
        peer_public: p.client.public(), // unused on the BDN side
    });
    let mut s = builder.build();
    let outcome = s.run_discovery_once();
    assert!(outcome.chosen.is_some(), "secured discovery succeeds");
    assert!(!outcome.used_multicast);
    let bdn = s.sim.actor::<Bdn>(s.bdn.unwrap()).unwrap();
    assert_eq!(bdn.secured_requests, 1, "the BDN opened exactly one envelope");
    assert_eq!(bdn.rejected_envelopes, 0);
}

#[test]
fn untrusted_client_falls_back_to_multicast() {
    // The client's certificate chains to a rogue CA the BDN does not
    // trust: every envelope is rejected, no ack ever comes, and the
    // client's §7 fallback machinery kicks in.
    let p = pki(2);
    let mut rng = StdRng::seed_from_u64(3);
    let rogue_ca = Authority::new_root("Rogue CA", 0, u64::MAX, &mut rng);
    let rogue_client = Identity::issued_by("mallory", &rogue_ca, &mut rng);

    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 52);
    // Put one broker in the lab realm so the multicast fallback has
    // something to find.
    builder.broker_sites = vec![BLOOMINGTON, 2, 3, 4, 5];
    builder.discovery.ack_timeout = Duration::from_millis(400);
    builder.discovery.retransmits_per_bdn = 1;
    builder.discovery.security = Some(SecuritySuite {
        identity: rogue_client,
        trust_root: rogue_ca.root_cert.clone(),
        peer_public: p.bdn.public(),
    });
    builder.bdn.security = Some(SecuritySuite {
        identity: p.bdn.clone(),
        trust_root: p.ca.root_cert.clone(),
        peer_public: p.client.public(),
    });
    let mut s = builder.build();
    let outcome = s.run_discovery_once();
    let bdn = s.sim.actor::<Bdn>(s.bdn.unwrap()).unwrap();
    assert!(bdn.rejected_envelopes >= 2, "every (re)transmission was rejected");
    assert_eq!(bdn.secured_requests, 0);
    assert!(outcome.used_multicast, "the client fell back to multicast");
    assert_eq!(
        s.site_of_broker(outcome.chosen.expect("lab broker answers")),
        Some(BLOOMINGTON)
    );
}

#[test]
fn unsecured_bdn_drops_secured_requests() {
    // Client speaks envelopes to a BDN with no security configured: the
    // BDN cannot open them and discovery proceeds via fallback.
    let p = pki(4);
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 53);
    builder.broker_sites = vec![BLOOMINGTON, BLOOMINGTON, 3, 4, 5];
    builder.discovery.ack_timeout = Duration::from_millis(400);
    builder.discovery.retransmits_per_bdn = 1;
    builder.discovery.security = Some(SecuritySuite {
        identity: p.client.clone(),
        trust_root: p.ca.root_cert.clone(),
        peer_public: p.bdn.public(),
    });
    // builder.bdn.security stays None.
    let mut s = builder.build();
    let outcome = s.run_discovery_once();
    let bdn = s.sim.actor::<Bdn>(s.bdn.unwrap()).unwrap();
    assert!(bdn.rejected_envelopes > 0);
    assert!(outcome.used_multicast);
    assert!(outcome.chosen.is_some());
}

//! # nb — broker discovery for distributed messaging infrastructures
//!
//! Umbrella crate re-exporting the full public API of the workspace; the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`) live here.
//!
//! Layer map, bottom to top:
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`util`] | `nb-util` | UUIDs, dedup caches, config files, statistics |
//! | [`wire`] | `nb-wire` | binary codec, protocol messages, topics |
//! | [`net`] | `nb-net` | actor runtime, discrete-event simulator, threaded runtime, WAN model, clocks/NTP |
//! | [`broker`] | `nb-broker` | publish/subscribe broker overlay |
//! | [`security`] | `nb-security` | SHA-256, HMAC, XTEA, Schnorr, certificates, envelopes |
//! | [`services`] | `nb-services` | compression, fragmentation, reliable delivery, replay |
//! | [`discovery`] | `nb-discovery` | **the paper's contribution**: BDNs, advertisements, the discovery protocol and selection |
//!
//! ## Quickstart
//!
//! ```
//! use std::time::Duration;
//! use nb::broker::TopologyKind;
//! use nb::discovery::scenario::ScenarioBuilder;
//! use nb::net::wan::BLOOMINGTON;
//!
//! // Five brokers on the paper's WAN sites in a star overlay, a BDN,
//! // and a client in Bloomington — all inside the deterministic
//! // simulator.
//! let mut scenario = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 42).build();
//! let outcome = scenario.run_discovery_once();
//! let broker = outcome.chosen.expect("a broker was discovered");
//! println!(
//!     "connected to {broker} in {:?} ({} responses)",
//!     outcome.phases.total(),
//!     outcome.responses_received,
//! );
//! ```

pub use nb_broker as broker;
pub use nb_discovery as discovery;
pub use nb_net as net;
pub use nb_security as security;
pub use nb_services as services;
pub use nb_util as util;
pub use nb_wire as wire;

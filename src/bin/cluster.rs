//! `cluster` — run a BDN/broker/client deployment from a configuration
//! file on the threaded (wall-clock) runtime.
//!
//! ```sh
//! cargo run --release --bin cluster -- examples/cluster.conf
//! ```
//!
//! The configuration format is the workspace's `key = value` format
//! (see `nb_util::Config`). Cluster-wide keys:
//!
//! ```text
//! cluster.seed = 7            # RNG seed
//! cluster.duration.ms = 5000  # how long to run before the summary
//! cluster.wan.ms = 15         # inter-realm one-way latency
//! ```
//!
//! Each node is declared by a `node.<name>.role` key plus per-role
//! settings:
//!
//! ```text
//! node.locator.role = bdn
//! node.locator.realm = 0
//!
//! node.hub.role = broker
//! node.hub.realm = 0
//! node.hub.bdns = locator
//! node.hub.neighbors =
//!
//! node.edge.role = broker
//! node.edge.realm = 1
//! node.edge.bdns = locator
//! node.edge.neighbors = hub
//!
//! node.app.role = client
//! node.app.realm = 0
//! node.app.bdns = locator
//! node.app.discover.after.ms = 900
//! ```

use std::collections::BTreeMap;
use std::time::Duration;

use nb::broker::{BrokerConfig, MachineProfile};
use nb::discovery::bdn::{Bdn, BdnConfig};
use nb::discovery::client::TIMER_START;
use nb::discovery::{DiscoveryBrokerActor, DiscoveryClient, DiscoveryConfig, ResponsePolicy};
use nb::net::{ClockProfile, Incoming, LinkSpec, ThreadedNet};
use nb::util::Config;
use nb::wire::{NodeId, RealmId};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Role {
    Bdn,
    Broker,
    Client,
}

#[derive(Debug)]
struct NodeDecl {
    name: String,
    role: Role,
    realm: RealmId,
    bdns: Vec<String>,
    neighbors: Vec<String>,
    discover_after: Duration,
}

fn fail(msg: &str) -> ! {
    eprintln!("cluster: {msg}");
    std::process::exit(2);
}

fn parse_decls(cfg: &Config) -> Vec<NodeDecl> {
    let mut names: Vec<String> = cfg
        .iter()
        .filter_map(|(k, _)| {
            let rest = k.strip_prefix("node.")?;
            let (name, key) = rest.split_once('.')?;
            (key == "role").then(|| name.to_string())
        })
        .collect();
    names.sort();
    names.dedup();
    if names.is_empty() {
        fail("no `node.<name>.role` declarations found");
    }
    let mut decls: Vec<NodeDecl> = names
        .into_iter()
        .map(|name| {
            let get = |key: &str| cfg.get(&format!("node.{name}.{key}"));
            let role = match get("role") {
                Some("bdn") => Role::Bdn,
                Some("broker") => Role::Broker,
                Some("client") => Role::Client,
                other => fail(&format!("node {name}: unknown role {other:?}")),
            };
            let realm = RealmId(
                get("realm").and_then(|v| v.parse().ok()).unwrap_or(0u16),
            );
            let list = |key: &str| cfg.get_list(&format!("node.{name}.{key}"));
            let discover_after = Duration::from_millis(
                get("discover.after.ms").and_then(|v| v.parse().ok()).unwrap_or(1000u64),
            );
            let bdns = list("bdns");
            let neighbors = list("neighbors");
            NodeDecl { name, role, realm, bdns, neighbors, discover_after }
        })
        .collect();
    // Every referenced name must be a declared node — catch typos here
    // rather than silently dropping them during cycle-breaking below.
    let declared: std::collections::BTreeSet<&str> =
        decls.iter().map(|d| d.name.as_str()).collect();
    for d in &decls {
        for r in d.bdns.iter().chain(d.neighbors.iter()) {
            if !declared.contains(r.as_str()) {
                fail(&format!("node {}: reference to undeclared node {r:?}", d.name));
            }
        }
    }
    // Creation order: BDNs, then brokers, then clients — so every name a
    // node references already has an id. Brokers are additionally
    // topologically ordered by their neighbor references (links are
    // mutual once established, so each edge only needs one dialler; on a
    // declaration cycle the remaining brokers are created in name order
    // and dial the neighbours that already exist).
    decls.sort_by(|a, b| a.role.cmp(&b.role).then(a.name.cmp(&b.name)));
    let mut ordered: Vec<NodeDecl> = Vec::with_capacity(decls.len());
    let mut pending: Vec<NodeDecl> = Vec::new();
    let mut created: std::collections::BTreeSet<String> = Default::default();
    for decl in decls {
        if decl.role == Role::Broker {
            pending.push(decl);
        } else {
            created.insert(decl.name.clone());
            ordered.push(decl);
        }
    }
    // BDNs sorted first already (Role ordering); slot brokers before
    // clients: remember where clients start.
    while !pending.is_empty() {
        let ready: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, d)| d.neighbors.iter().all(|n| created.contains(n)))
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            // Cycle: create the first pending broker, dropping the dials
            // to not-yet-created peers (they will dial us instead if the
            // edge is declared on their side too).
            let mut d = pending.remove(0);
            d.neighbors.retain(|n| created.contains(n));
            created.insert(d.name.clone());
            ordered.push(d);
            continue;
        }
        for i in ready.into_iter().rev() {
            let d = pending.remove(i);
            created.insert(d.name.clone());
            ordered.push(d);
        }
    }
    // Re-sort so clients still come last (topological pass appended
    // brokers after them).
    ordered.sort_by_key(|a| a.role);
    ordered
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "examples/cluster.conf".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let cfg = Config::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));

    let seed = cfg.get_u64("cluster.seed", 7).unwrap_or_else(|e| fail(&e.to_string()));
    let duration = Duration::from_millis(
        cfg.get_u64("cluster.duration.ms", 5000).unwrap_or_else(|e| fail(&e.to_string())),
    );
    let wan_ms = cfg.get_u64("cluster.wan.ms", 15).unwrap_or_else(|e| fail(&e.to_string()));

    let decls = parse_decls(&cfg);
    println!("cluster: {} nodes from {path} (seed {seed})", decls.len());

    let mut net = ThreadedNet::new(seed);
    net.configure_network(|n| {
        n.intra_realm_spec = LinkSpec::lan();
        n.inter_realm_spec = LinkSpec::wan(Duration::from_millis(wan_ms));
    });
    // Fast clock sync so short demo runs see synced timestamps.
    let clocks = ClockProfile {
        max_true_offset: Duration::from_millis(250),
        min_residual: Duration::from_millis(1),
        max_residual: Duration::from_millis(10),
        min_sync_delay: Duration::from_millis(60),
        max_sync_delay: Duration::from_millis(150),
    };

    let mut ids: BTreeMap<String, NodeId> = BTreeMap::new();
    let mut clients: Vec<(String, NodeId, Duration)> = Vec::new();
    let resolve = |ids: &BTreeMap<String, NodeId>, names: &[String], me: &str| -> Vec<NodeId> {
        names
            .iter()
            .map(|n| {
                *ids.get(n).unwrap_or_else(|| {
                    fail(&format!(
                        "node {me}: reference to {n:?} (not created yet or unknown — \
                         note creation order is bdn < broker < client)"
                    ))
                })
            })
            .collect()
    };

    for decl in &decls {
        let id = match decl.role {
            Role::Bdn => {
                net.add_node(&decl.name, decl.realm, clocks, Box::new(Bdn::new(BdnConfig::default())))
            }
            Role::Broker => {
                let bdns = resolve(&ids, &decl.bdns, &decl.name);
                let neighbors = resolve(&ids, &decl.neighbors, &decl.name);
                let actor = DiscoveryBrokerActor::new(
                    BrokerConfig {
                        hostname: format!("{}.cluster.local", decl.name),
                        machine: MachineProfile::default_2005(),
                        neighbors,
                        ..BrokerConfig::default()
                    },
                    bdns,
                    ResponsePolicy::open(),
                );
                net.add_node(&decl.name, decl.realm, clocks, Box::new(actor))
            }
            Role::Client => {
                let bdns = resolve(&ids, &decl.bdns, &decl.name);
                let dcfg = DiscoveryConfig {
                    bdns,
                    collection_window: Duration::from_millis(1500),
                    max_responses: 8,
                    ping_window: Duration::from_millis(500),
                    ack_timeout: Duration::from_millis(700),
                    ..DiscoveryConfig::default()
                };
                let id = net.add_node(
                    &decl.name,
                    decl.realm,
                    clocks,
                    Box::new(DiscoveryClient::with_auto_start(dcfg, false)),
                );
                clients.push((decl.name.clone(), id, decl.discover_after));
                id
            }
        };
        println!("  + {:<12} {:?} as {id}", decl.name, decl.role);
        ids.insert(decl.name.clone(), id);
    }

    // Kick each client's discovery at its configured delay.
    let mut kicks = clients.clone();
    kicks.sort_by_key(|(_, _, d)| *d);
    // nb-lint::allow(D001, reason = "cluster driver paces real client processes against wall-clock delays; this is the live-deployment harness, not the deterministic sim")
    let start = std::time::Instant::now();
    for (name, id, after) in &kicks {
        let elapsed = start.elapsed();
        if *after > elapsed {
            std::thread::sleep(*after - elapsed);
        }
        println!("  > {name}: starting discovery");
        net.inject(*id, Incoming::Timer { token: TIMER_START });
    }
    let elapsed = start.elapsed();
    if duration > elapsed {
        std::thread::sleep(duration - elapsed);
    }

    // Tear down and report.
    let by_id: BTreeMap<NodeId, String> = ids.iter().map(|(n, i)| (*i, n.clone())).collect();
    let actors = net.shutdown();
    println!("\n=== cluster summary ===");
    let mut entries: Vec<_> = actors.iter().collect();
    entries.sort_by_key(|(id, _)| **id);
    for (id, actor) in entries {
        let name = by_id.get(id).cloned().unwrap_or_else(|| id.to_string());
        let any = actor.as_any();
        if let Some(b) = any.downcast_ref::<Bdn>() {
            println!(
                "  {name:<12} bdn     registry={} requests={} dupes={}",
                b.registry_len(),
                b.requests_handled,
                b.duplicate_requests
            );
        } else if let Some(b) = any.downcast_ref::<DiscoveryBrokerActor>() {
            println!(
                "  {name:<12} broker  links={} clients={} responses={} events={}",
                b.broker.num_links(),
                b.broker.num_clients(),
                b.responder.responses_sent,
                b.broker.events_routed
            );
        } else if let Some(c) = any.downcast_ref::<DiscoveryClient>() {
            for (i, o) in c.completed.iter().enumerate() {
                let chosen = o
                    .chosen
                    .and_then(|b| by_id.get(&b).cloned())
                    .unwrap_or_else(|| "-".to_string());
                println!(
                    "  {name:<12} client  run {i}: -> {chosen} in {:?} ({} responses{})",
                    o.phases.total(),
                    o.responses_received,
                    if o.used_multicast { ", multicast" } else { "" }
                );
            }
            if c.completed.is_empty() {
                println!("  {name:<12} client  (no completed discovery — still {:?})", c.phase());
            }
        }
    }
}

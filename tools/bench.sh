#!/usr/bin/env bash
# Regenerates the perf baseline: builds the workspace in release mode,
# runs the figure suite serial vs parallel plus the hot-path A/B, and
# writes BENCH_discovery.json at the repo root.
#
# Usage:
#   tools/bench.sh                  # paper protocol (120 runs/figure)
#   tools/bench.sh --runs 30        # faster smoke baseline
#   tools/bench.sh --threads 8      # pin the parallel worker count
#
# All flags are forwarded to `repro bench`. The parallel speedup is
# bounded by visible cores (recorded in the JSON as "cores"); regenerate
# on multi-core hardware before reading anything into that number.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p nb-bench
./target/release/repro bench --bench-json BENCH_discovery.json "$@"

#!/usr/bin/env bash
# Regenerates the perf baseline: builds the workspace in release mode,
# runs the figure suite serial vs parallel plus the hot-path A/B, and
# writes BENCH_discovery.json at the repo root.
#
# Usage:
#   tools/bench.sh                  # paper protocol (120 runs/figure)
#   tools/bench.sh --runs 30        # faster smoke baseline
#   tools/bench.sh --workers 8      # pin the parallel worker count (--threads alias)
#   tools/bench.sh chaos-smoke      # 3-seed chaos campaign (<30 s),
#                                   # writes CHAOS_campaign.json
#   tools/bench.sh federation       # 10-seed federated-BDN anti-entropy
#                                   # campaign (scripted n-1 BDN loss +
#                                   # randomized plans), run at 1 and 4
#                                   # workers; writes BENCH_federation.json,
#                                   # exit 1 on invariant failure or if the
#                                   # two reports differ by a byte
#   tools/bench.sh lint             # nb-lint static analysis (D001–D011,
#                                   # W001–W004): regenerates LINT_report.json
#                                   # and diffs it against the committed
#                                   # copy; exit 1 on new findings OR if
#                                   # the committed report is stale
#   tools/bench.sh routing          # routing micro-suite (trie+memo vs
#                                   # linear oracle), writes
#                                   # BENCH_routing.json; exit 1 unless
#                                   # trie ≥ 3x / memo ≥ 10x at 1e4 filters
#   tools/bench.sh codec            # wire-path micro-suite (peek vs full
#                                   # decode, forward vs re-encode, allocs
#                                   # per delivery, v1-vs-v2 link A/B),
#                                   # writes BENCH_codec.json; exit 1 unless
#                                   # peek ≥ 5x, forward ≥ 3x and the v2
#                                   # bytes/delivery reduction ≥ 1.5x at
#                                   # 32-way fan-out — or if the committed
#                                   # BENCH_codec.json's deterministic
#                                   # (byte-count) columns are stale
#   tools/bench.sh scale            # WAN scale-campaign gate: the small
#                                   # tier set (star/linear at 2e3 and the
#                                   # geometric mesh at 1e4 entities) run
#                                   # at 1 and 4 workers; writes
#                                   # BENCH_scale.json, exit 1 if any tier
#                                   # fails to attach, an A/B oracle
#                                   # drifts, fewer than 2 of 3 slab A/B
#                                   # columns clear 3x, the throughput
#                                   # floor / memory ceiling is missed, or
#                                   # the two reports differ by a byte
#   tools/bench.sh shards           # sharded-engine determinism gate: the
#                                   # same workload at 1/2/4 intra-run
#                                   # workers must produce byte-identical
#                                   # digests (hard failure otherwise);
#                                   # the 4-worker speedup is recorded in
#                                   # BENCH_discovery.json, never gated
#
# All other flags are forwarded to `repro bench`. The parallel speedup
# is bounded by visible cores (recorded in the JSON as "cores");
# regenerate on multi-core hardware before reading anything into that
# number.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "chaos-smoke" ]]; then
    shift
    # The same three seeds the tier-1 test wrapper pins
    # (crates/bench/tests/chaos_campaign.rs::chaos_smoke_three_fixed_seeds):
    # scenario 0 is the scripted BDN state-loss restart, the other two
    # are generated plans.
    cargo build --release -p nb-bench
    ./target/release/repro chaos --scenarios 3 --seed 11 \
        --chaos-json CHAOS_campaign.json "$@"
    exit 0
fi

if [[ "${1:-}" == "federation" ]]; then
    shift
    # Anti-entropy gate: the pinned-seed campaign must pass every
    # invariant (attached, cross-BDN convergence, no resurrection) and
    # the report must be byte-identical at 1 and 4 campaign workers —
    # the worker-invariance contract of the sync message flow.
    cargo build --release -p nb-bench
    ./target/release/repro federation --scenarios 10 --seed 2005 --workers 1 \
        --federation-json BENCH_federation.json "$@"
    ./target/release/repro federation --scenarios 10 --seed 2005 --workers 4 \
        --federation-json BENCH_federation.workers4.json "$@"
    if ! cmp -s BENCH_federation.json BENCH_federation.workers4.json; then
        echo "FAIL: federation report differs between 1 and 4 workers" >&2
        exit 1
    fi
    rm -f BENCH_federation.workers4.json
    echo "federation report byte-identical at 1 and 4 workers"
    exit 0
fi

if [[ "${1:-}" == "lint" ]]; then
    shift
    # Determinism/protocol-safety gate. Uses repro so the report lands
    # next to the other reproduction artifacts; tools/lint.sh is the
    # fast dev path (debug build, no release compile).
    #
    # Regenerate-and-compare: the committed LINT_report.json must match
    # what the tree actually produces, so a stale committed report can
    # never pass CI.
    cargo build --release -p nb-bench
    ./target/release/repro lint --lint-json LINT_report.json.new "$@"
    if ! cmp -s LINT_report.json LINT_report.json.new; then
        echo "FAIL: committed LINT_report.json is stale — diff vs regenerated:" >&2
        diff LINT_report.json LINT_report.json.new >&2 || true
        rm -f LINT_report.json.new
        exit 1
    fi
    rm -f LINT_report.json.new
    echo "LINT_report.json matches the tree"
    exit 0
fi

if [[ "${1:-}" == "routing" ]]; then
    shift
    # Subscription-matching gate: the segment-id trie must beat the
    # pre-trie linear scan ≥ 3x cold (and ≥ 10x memo-warm) at 1e4
    # filters, pinned seed so reruns measure the same population.
    cargo build --release -p nb-bench
    ./target/release/repro routing --seed 11 --min-speedup 3 \
        --routing-json BENCH_routing.json "$@"
    exit 0
fi

if [[ "${1:-}" == "codec" ]]; then
    shift
    # Zero-copy wire-path gate: header peek must beat the full decode
    # ≥ 5x, byte-forwarding must beat decode+re-encode ≥ 3x, and the v2
    # compact codec must cut bytes/delivery ≥ 1.5x at 32-way fan-out —
    # pinned seed so reruns measure the same frame population.
    #
    # Regenerate-and-compare (same playbook as the lint report): the
    # committed BENCH_codec.json's *deterministic* columns — byte
    # counts, reductions, frames per segment, population shape — must
    # match what the tree actually produces, so a stale committed
    # baseline can never pass CI. Timing columns are machine-dependent
    # and deliberately excluded from the comparison.
    cargo build --release -p nb-bench
    ./target/release/repro codec --seed 11 --min-peek-speedup 5 \
        --min-forward-speedup 3 --min-bytes-reduction 1.5 \
        --codec-json BENCH_codec.json.new "$@"
    det_keys() {
        grep -E '"(suite|seed|frames|ops|link_fan_out|fan_out|v2_batch|v2_epochs|fan(4|32)_(v1|v2)_bytes_per_delivery|fan(4|32)_bytes_reduction|fan(4|32)_frames_per_segment|bytes_reduction)":' "$1"
    }
    if ! diff <(det_keys BENCH_codec.json) <(det_keys BENCH_codec.json.new); then
        echo "FAIL: committed BENCH_codec.json is stale — regenerate with:" >&2
        echo "  ./target/release/repro codec --seed 11 --codec-json BENCH_codec.json" >&2
        rm -f BENCH_codec.json.new
        exit 1
    fi
    rm -f BENCH_codec.json.new
    echo "BENCH_codec.json deterministic columns match the tree"
    exit 0
fi

if [[ "${1:-}" == "scale" ]]; then
    shift
    # Scale-campaign gate, same playbook as the federation gate: the
    # report contains no wall-clock or worker-count fields, so the 1-
    # and 4-worker invocations must emit byte-identical JSON — that is
    # the worker-invariance contract of the whole discovery → attach →
    # steady-state flow at campaign population. Gates on the first run:
    # every tier fully attaches, ≥ 2 of the 3 slab A/B columns clear 3x
    # with oracle agreement, ≥ 20k events/sec per tier (a ~10x-headroom
    # floor against engine regressions, not a hardware benchmark), and
    # ≤ 16 KiB retained heap per entity via the counting allocator.
    cargo build --release -p nb-bench
    ./target/release/repro scale --tier small --seed 2005 --workers 1 \
        --min-ab-speedup 3 --min-events-per-sec 20000 \
        --max-bytes-per-entity 16384 \
        --scale-json BENCH_scale.json "$@"
    ./target/release/repro scale --tier small --seed 2005 --workers 4 \
        --scale-json BENCH_scale.workers4.json "$@"
    if ! cmp -s BENCH_scale.json BENCH_scale.workers4.json; then
        echo "FAIL: scale report differs between 1 and 4 workers" >&2
        exit 1
    fi
    rm -f BENCH_scale.workers4.json
    echo "scale report byte-identical at 1 and 4 workers"
    exit 0
fi

if [[ "${1:-}" == "shards" ]]; then
    shift
    # Conservative-lookahead engine gate: digest equality across worker
    # counts is the determinism contract (DESIGN.md §13). Pinned seed so
    # reruns exercise the same event population; wall-clock speedup is
    # recorded but deliberately not gated — on a 1-core box the sharded
    # path cannot beat serial and that is not a defect.
    cargo build --release -p nb-bench
    ./target/release/repro shards --seed 11 --runs 6 "$@"
    exit 0
fi

cargo build --release -p nb-bench
./target/release/repro bench --bench-json BENCH_discovery.json "$@"

#!/usr/bin/env bash
# Fast-path wrapper for nb-lint: debug build (the linter is tiny and
# dependency-free, so this is seconds even from cold), no JSON artifact
# unless asked.
#
# Usage:
#   tools/lint.sh                       # lint the workspace, human report
#   tools/lint.sh --json LINT_report.json
#   tools/lint.sh --baseline path/to/baseline.txt
#
# Exit codes: 0 clean, 1 new findings, 2 usage/IO error.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q -p nb-lint -- "$@"

//! Quickstart: discover the nearest broker on the paper's WAN testbed.
//!
//! Builds the five-broker star overlay of Figure 8 inside the
//! deterministic simulator, runs one full discovery from the Bloomington
//! client lab, and prints what happened at every phase.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nb::broker::TopologyKind;
use nb::discovery::scenario::ScenarioBuilder;
use nb::net::wan::BLOOMINGTON;

fn main() {
    let seed = 2005;
    println!("building the star topology (Figure 8) with seed {seed}…");
    let mut scenario = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, seed).build();

    println!("testbed:");
    for (i, &site) in scenario.broker_sites.clone().iter().enumerate() {
        let s = scenario.wan.site(site);
        println!("  broker-{i} at {:<12} ({})", s.name, s.host);
    }
    println!("  client   at Bloomington (Community Grids Lab)");
    println!();

    let outcome = scenario.run_discovery_once();

    let chosen = outcome.chosen.expect("discovery should succeed on a healthy network");
    let site = scenario.site_of_broker(chosen).expect("chosen broker has a site");
    println!("discovered broker: {chosen} at {}", scenario.wan.site(site).name);
    println!("responses gathered: {}", outcome.responses_received);
    println!("target set: {:?}", outcome.target_set);
    println!();
    println!("phase breakdown (total {:?}):", outcome.phases.total());
    for (label, share) in outcome.phases.shares() {
        println!("  {:<18} {:>5.1} %", label, share * 100.0);
    }
    println!();
    println!("measured ping RTTs:");
    let mut rtts = outcome.rtts_us.clone();
    rtts.sort_by_key(|&(_, rtt)| rtt);
    for (broker, rtt) in rtts {
        let label = scenario
            .site_of_broker(broker)
            .map(|s| scenario.wan.site(s).name)
            .unwrap_or("?");
        println!("  {broker} ({label:<12}) {:>8.2} ms", rtt as f64 / 1e3);
    }
}

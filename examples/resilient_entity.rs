//! The entity life cycle end to end: an application entity discovers its
//! broker, exchanges events, loses the broker, and transparently
//! rediscovers — the paper's §1.2 "very dynamic and fluid system" made
//! concrete.
//!
//! ```sh
//! cargo run --release --example resilient_entity
//! ```

use std::time::Duration;

use nb::broker::{BrokerConfig, MachineProfile};
use nb::discovery::bdn::{Bdn, BdnConfig};
use nb::discovery::{DiscoveryBrokerActor, DiscoveryConfig, Entity, ResponsePolicy};
use nb::net::{ClockProfile, LinkSpec, Sim};
use nb::wire::{NodeId, RealmId, Topic, TopicFilter};

fn main() {
    let mut sim = Sim::with_clock_profile(17, ClockProfile::perfect());
    sim.network_mut().intra_realm_spec = LinkSpec::lan().with_loss(0.0);
    let bdn = sim.add_node("bdn", RealmId(0), Box::new(Bdn::new(BdnConfig::default())));
    let mk = |name: &str, neighbors: Vec<NodeId>| {
        DiscoveryBrokerActor::new(
            BrokerConfig {
                hostname: name.to_string(),
                machine: MachineProfile::default_2005(),
                neighbors,
                ..BrokerConfig::default()
            },
            vec![bdn],
            ResponsePolicy::open(),
        )
    };
    let b0 = sim.add_node("broker-0", RealmId(0), Box::new(mk("broker-0.local", vec![])));
    let _b1 = sim.add_node("broker-1", RealmId(0), Box::new(mk("broker-1.local", vec![b0])));

    let cfg = DiscoveryConfig {
        bdns: vec![bdn],
        collection_window: Duration::from_millis(1000),
        max_responses: 2,
        ping_window: Duration::from_millis(400),
        ack_timeout: Duration::from_millis(500),
        ..DiscoveryConfig::default()
    };
    let filter = TopicFilter::parse("alerts/**").unwrap();
    let subscriber =
        sim.add_node("subscriber", RealmId(0), Box::new(Entity::new(cfg.clone(), vec![filter])));
    let publisher = sim.add_node("publisher", RealmId(0), Box::new(Entity::new(cfg, vec![])));

    sim.run_for(Duration::from_secs(4));
    let sub_broker = sim.actor::<Entity>(subscriber).unwrap().broker().expect("attached");
    println!("subscriber attached to {} ({})", sub_broker, sim.node_name(sub_broker));
    println!(
        "publisher attached to {}",
        sim.node_name(sim.actor::<Entity>(publisher).unwrap().broker().unwrap())
    );

    sim.actor_mut::<Entity>(publisher)
        .unwrap()
        .queue_publish(Topic::parse("alerts/disk").unwrap(), b"disk full".to_vec());
    sim.run_for(Duration::from_secs(2));
    println!(
        "subscriber received {} event(s) before the failure",
        sim.actor::<Entity>(subscriber).unwrap().received.len()
    );

    println!("\ncrashing {} …", sim.node_name(sub_broker));
    sim.crash(sub_broker);
    sim.run_for(Duration::from_secs(30));

    let entity = sim.actor::<Entity>(subscriber).unwrap();
    let new_broker = entity.broker().expect("reattached");
    println!(
        "subscriber failed over to {} after {} keepalive losses (attachment history: {:?})",
        sim.node_name(new_broker),
        entity.failovers,
        entity.attachments
    );
    assert_ne!(new_broker, sub_broker);

    // The publisher may also have lived on the dead broker; give it time,
    // then prove the subscription survived the move.
    sim.run_for(Duration::from_secs(10));
    sim.actor_mut::<Entity>(publisher)
        .unwrap()
        .queue_publish(Topic::parse("alerts/cpu").unwrap(), b"cpu hot".to_vec());
    sim.run_for(Duration::from_secs(3));
    let received = sim.actor::<Entity>(subscriber).unwrap().received.len();
    println!("subscriber received {received} event(s) in total — subscriptions survived");
    assert_eq!(received, 2);
}

//! A scripted chaos run: the BDN is restarted with **full state loss**
//! and the subscriber's WAN path flaps while an unruly packet window
//! (duplication, corruption, reordering) runs over the top. Recovery is
//! lease-driven — broker re-advertisement heartbeats repopulate the
//! empty registry, the entities' capped-exponential backoff rides out
//! the outage, and the dedup cache absorbs the duplicated packets.
//!
//! ```sh
//! cargo run --release --example chaos_campaign
//! ```

use std::time::Duration;

use nb::broker::{BrokerConfig, MachineProfile};
use nb::discovery::bdn::{Bdn, BdnConfig};
use nb::discovery::{
    DiscoveryBrokerActor, DiscoveryConfig, Entity, ResponsePolicy, RetryPolicy,
};
use nb::net::{ClockProfile, FaultPlan, LinkSpec, PacketFaults, Sim};
use nb::wire::{NodeId, RealmId, Topic, TopicFilter};

fn main() {
    let mut sim = Sim::with_clock_profile(42, ClockProfile::perfect());
    sim.network_mut().intra_realm_spec = LinkSpec::lan().with_loss(0.0005);
    sim.network_mut().inter_realm_spec =
        LinkSpec::wan(Duration::from_millis(15)).with_loss(0.001);

    // Short 20 s advertisement leases; strict lease mode means only
    // heartbeating brokers are ever injection targets.
    let bdn_cfg = BdnConfig {
        ad_ttl: Duration::from_secs(20),
        ping_interval: Duration::from_secs(5),
        require_lease: true,
        ..BdnConfig::default()
    };
    let bdn = sim.add_node("bdn", RealmId(0), Box::new(Bdn::new(bdn_cfg.clone())));
    sim.set_respawn(bdn, Box::new(move || Box::new(Bdn::new(bdn_cfg.clone()))));

    // Three brokers re-advertising every 5 s (four heartbeats per lease).
    let mut brokers: Vec<NodeId> = Vec::new();
    for i in 0..3u16 {
        let cfg = BrokerConfig {
            hostname: format!("broker-{i}.local"),
            machine: MachineProfile::default_2005(),
            neighbors: brokers.clone(),
            ..BrokerConfig::default()
        };
        let mut actor = DiscoveryBrokerActor::new(cfg.clone(), vec![bdn], ResponsePolicy::open());
        actor.advertiser.set_readvertise(Duration::from_secs(5));
        let node = sim.add_node(&format!("broker-{i}"), RealmId(i % 2), Box::new(actor));
        sim.set_respawn(
            node,
            Box::new(move || {
                let mut fresh =
                    DiscoveryBrokerActor::new(cfg.clone(), vec![bdn], ResponsePolicy::open());
                fresh.advertiser.set_readvertise(Duration::from_secs(5));
                Box::new(fresh)
            }),
        );
        brokers.push(node);
    }

    // Entities with capped-exponential request backoff (300 ms → 3 s).
    let cfg = DiscoveryConfig {
        bdns: vec![bdn],
        collection_window: Duration::from_millis(1000),
        max_responses: 5,
        ping_window: Duration::from_millis(400),
        retransmits_per_bdn: 2,
        backoff: Some(RetryPolicy::new(
            Duration::from_millis(300),
            2.0,
            Duration::from_secs(3),
            0.2,
        )),
        ..DiscoveryConfig::default()
    };
    let filter = TopicFilter::parse("alerts/**").unwrap();
    let subscriber =
        sim.add_node("subscriber", RealmId(0), Box::new(Entity::new(cfg.clone(), vec![filter])));
    let publisher = sim.add_node("publisher", RealmId(1), Box::new(Entity::new(cfg, vec![])));

    sim.run_for(Duration::from_secs(8));
    let sub_broker = sim.actor::<Entity>(subscriber).unwrap().broker().expect("attached");
    println!(
        "attached: subscriber -> {}, publisher -> {}",
        sim.node_name(sub_broker),
        sim.node_name(sim.actor::<Entity>(publisher).unwrap().broker().unwrap()),
    );
    println!(
        "registry before the storm: {} leases\n",
        sim.actor::<Bdn>(bdn).unwrap().registry_len()
    );

    // The storm: BDN loses its registry, the subscriber's broker link
    // flaps for 10 s, and packets get duplicated/corrupted/reordered.
    let plan = FaultPlan::new()
        .lossy_restart_at(Duration::from_secs(2), bdn, Duration::from_secs(10))
        .flap_at(Duration::from_secs(15), subscriber, sub_broker, Duration::from_secs(10))
        .packet_fault_window(
            Duration::from_secs(15),
            Duration::from_secs(10),
            PacketFaults::unruly(),
        )
        .sorted();
    println!("installing fault plan:\n{}", plan.describe());
    sim.apply_fault_plan(&plan);
    sim.run_for(Duration::from_secs(60));

    // Post-recovery traffic proves the system healed.
    sim.actor_mut::<Entity>(publisher)
        .unwrap()
        .queue_publish(Topic::parse("alerts/recovered").unwrap(), b"all clear".to_vec());
    sim.run_for(Duration::from_secs(5));

    let bdn_actor = sim.actor::<Bdn>(bdn).unwrap();
    println!(
        "registry after heartbeat-driven recovery: {} leases \
         ({} stale targets skipped along the way)",
        bdn_actor.registry_len(),
        bdn_actor.stale_targets_skipped,
    );
    let sub = sim.actor::<Entity>(subscriber).unwrap();
    println!(
        "subscriber: attached to {}, {} failover(s), received {} event(s), \
         {} duplicate(s) suppressed",
        sim.node_name(sub.broker().expect("re-attached")),
        sub.failovers,
        sub.received.len(),
        sub.duplicates_dropped,
    );
    let stats = sim.stats();
    println!(
        "packet faults endured: {} duplicated, {} corrupted, {} reordered, \
         {} blocked by partitions",
        stats.datagrams_duplicated,
        stats.datagrams_corrupted,
        stats.datagrams_reordered,
        stats.unreachable_partitioned,
    );
    assert!(sub.broker().is_some(), "the subscriber must end attached");
    assert_eq!(sub.received.len(), 1, "the post-recovery event must arrive exactly once");
    println!("\nrecovered: the lease registry was rebuilt from heartbeats alone");
}

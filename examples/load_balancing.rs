//! Load balancing: a newly added broker is preferentially selected (§8.3).
//!
//! The paper's advantage #3: "since broker discovery responses include
//! the usage metric, a newly added broker within a cluster would be
//! preferentially utilized by the discovery algorithms". We load one
//! broker with many clients, then add a fresh idle broker at the same
//! site and show discovery steering the next entities to it.
//!
//! ```sh
//! cargo run --release --example load_balancing
//! ```

use std::time::Duration;

use nb::broker::{BrokerActor, BrokerConfig, MachineProfile, PubSubClient, TopologyKind};
use nb::discovery::scenario::ScenarioBuilder;
use nb::discovery::{DiscoveryBrokerActor, ResponsePolicy, SelectionWeights};
use nb::net::wan::{INDIANAPOLIS, BLOOMINGTON};

fn main() {
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 7);
    // Ignore proximity; choose on load alone so the effect is starkly
    // visible (the default weights blend both). The paper's *final*
    // choice is the lowest ping RTT among the target set (§6), so to let
    // the usage metric decide outright we shrink the target set to one.
    builder.discovery.weights = SelectionWeights::load_only();
    builder.discovery.target_set_size = 1;
    builder.discovery.max_responses = 10;
    let mut scenario = builder.build();

    // Saturate the hub broker (Indianapolis) with client connections.
    let hub = scenario.brokers[0];
    for i in 0..60 {
        scenario.sim.add_node(
            &format!("load-client-{i}"),
            scenario.wan.site(INDIANAPOLIS).realm,
            Box::new(PubSubClient::new(hub, vec![])),
        );
    }
    scenario.sim.run_for(Duration::from_secs(8));
    {
        let hub_actor = scenario.sim.actor::<DiscoveryBrokerActor>(hub).unwrap();
        println!("hub broker now carries {} client connections", hub_actor.broker.num_clients());
    }

    let before = scenario.run_discovery_once();
    let before_site = scenario.site_of_broker(before.chosen.unwrap()).unwrap();
    println!(
        "discovery before the new broker: chose {} at {}",
        before.chosen.unwrap(),
        scenario.wan.site(before_site).name
    );

    // Bring up a fresh broker at Indianapolis, register it with the BDN,
    // and link it to the hub so it joins the overlay.
    let site = scenario.wan.site(INDIANAPOLIS);
    let cfg = BrokerConfig {
        hostname: "fresh.ucs.indiana.edu".into(),
        logical_address: "nb://paper/broker-new".into(),
        machine: MachineProfile::with_memory(site.total_memory),
        neighbors: vec![hub],
        ..BrokerConfig::default()
    };
    let bdns = scenario.bdn.into_iter().collect();
    let fresh = scenario.sim.add_node(
        "broker-new@Indianapolis",
        site.realm,
        Box::new(DiscoveryBrokerActor::new(cfg, bdns, ResponsePolicy::open())),
    );
    // Wire its WAN links like any Indianapolis host.
    let placements: Vec<(nb::wire::NodeId, usize)> = scenario
        .brokers
        .iter()
        .copied()
        .zip(scenario.broker_sites.iter().copied())
        .chain([(scenario.client, scenario.client_site)])
        .collect();
    for (node, s) in placements {
        let spec = scenario.wan.link_spec(INDIANAPOLIS, s);
        scenario.sim.network_mut().set_link(fresh, node, spec);
    }
    if let Some(bdn) = scenario.bdn {
        let spec = scenario.wan.link_spec(INDIANAPOLIS, INDIANAPOLIS);
        scenario.sim.network_mut().set_link(fresh, bdn, spec);
    }
    // Let it sync clocks, advertise and link up.
    scenario.sim.run_for(Duration::from_secs(8));
    println!("added an idle broker {fresh} at Indianapolis");

    let after = scenario.run_discovery_once();
    let chosen = after.chosen.unwrap();
    println!(
        "discovery after the new broker:  chose {chosen}{}",
        if chosen == fresh { " — the freshly added broker" } else { "" }
    );
    assert_eq!(chosen, fresh, "the idle newcomer must win under load-aware selection");

    // BrokerActor is unused in this example but demonstrates that plain
    // brokers and discovery-enabled brokers share the same substrate.
    let _ = BrokerActor::new(BrokerConfig::default());
}

//! WAN discovery sweep: the paper's §9 evaluation in miniature.
//!
//! Runs discovery from every Table-1 site over all three broker-network
//! topologies (unconnected / star / linear) and prints the per-site
//! discovery-time statistics plus the sub-activity breakdown — a compact
//! rendition of Figures 2–11.
//!
//! ```sh
//! cargo run --release --example wan_discovery
//! ```

use nb::broker::TopologyKind;
use nb::discovery::scenario::ScenarioBuilder;
use nb::net::wan::{WanModel, BLOOMINGTON, CARDIFF, FSU, NCSA, UMN};
use nb::util::stats::{paper_protocol, Summary};

const RUNS: usize = 24;
const SEED: u64 = 7;

fn main() {
    let wan = WanModel::paper();
    println!("== Table 1 testbed ==\n{wan}");

    for kind in [TopologyKind::Unconnected, TopologyKind::Star, TopologyKind::Linear] {
        println!("== {} topology ==", kind.label());
        for site in [BLOOMINGTON, FSU, CARDIFF, UMN, NCSA] {
            let mut scenario = ScenarioBuilder::new(kind, site, SEED).build();
            let outcomes = scenario.run_discovery(RUNS);
            let totals: Vec<f64> = outcomes
                .iter()
                .filter(|o| o.chosen.is_some())
                .map(|o| o.phases.total().as_secs_f64() * 1e3)
                .collect();
            let kept = paper_protocol(&totals, RUNS);
            let s = Summary::of(&kept).expect("outcomes");
            let chosen_site = outcomes
                .last()
                .and_then(|o| o.chosen)
                .and_then(|b| scenario.site_of_broker(b))
                .map(|i| wan.site(i).name)
                .unwrap_or("-");
            println!(
                "  client {:<12} mean {:>7.1} ms  sd {:>6.1}  min {:>7.1}  max {:>7.1}  -> {}",
                wan.site(site).name,
                s.mean,
                s.std_dev,
                s.min,
                s.max,
                chosen_site,
            );
        }
        // Breakdown for the Bloomington client (the paper's Figures 2/9/11).
        let mut scenario = ScenarioBuilder::new(kind, BLOOMINGTON, SEED).build();
        let outcomes = scenario.run_discovery(RUNS);
        let mut sums = [0.0f64; 5];
        let mut total = 0.0;
        for o in &outcomes {
            let p = &o.phases;
            for (slot, d) in
                [p.issue, p.collect, p.select, p.ping, p.connect].iter().enumerate()
            {
                sums[slot] += d.as_secs_f64();
            }
            total += p.total().as_secs_f64();
        }
        let labels = ["issue+ack", "await responses", "selection", "ping", "connect"];
        print!("  breakdown (Bloomington):");
        for (label, sum) in labels.iter().zip(sums) {
            print!("  {label} {:.0}%", 100.0 * sum / total);
        }
        println!("\n");
    }
}

//! Broker churn on the threaded runtime: the same actors, real threads.
//!
//! Everything else in the examples runs in virtual time; this one drives
//! the identical protocol stack on the wall-clock [`ThreadedNet`]
//! runtime: two brokers and a BDN come up, a client discovers and
//! connects, the chosen broker dies, and a rediscovery lands on the
//! survivor — the paper's "very dynamic and fluid system where broker
//! processes may join and leave at arbitrary times" (§1.2).
//!
//! ```sh
//! cargo run --release --example broker_churn
//! ```

use std::time::Duration;

use nb::broker::{BrokerConfig, MachineProfile};
use nb::discovery::bdn::{Bdn, BdnConfig};
use nb::discovery::client::TIMER_START;
use nb::discovery::{DiscoveryBrokerActor, DiscoveryClient, DiscoveryConfig, ResponsePolicy};
use nb::net::{ClockProfile, Incoming, LinkSpec, ThreadedNet};
use nb::wire::RealmId;

fn main() {
    // Fast clocks (sync within ~100 ms) so the demo runs in seconds.
    let clocks = ClockProfile {
        max_true_offset: Duration::from_millis(200),
        min_residual: Duration::from_millis(1),
        max_residual: Duration::from_millis(5),
        min_sync_delay: Duration::from_millis(50),
        max_sync_delay: Duration::from_millis(120),
    };
    let mut net = ThreadedNet::new(11);
    net.configure_network(|n| {
        n.intra_realm_spec = LinkSpec::lan();
        n.inter_realm_spec = LinkSpec::wan(Duration::from_millis(15));
    });

    let realm = RealmId(0);
    let bdn = net.add_node("bdn", realm, clocks, Box::new(Bdn::new(BdnConfig::default())));

    let mk_broker = |name: &str, neighbors| {
        DiscoveryBrokerActor::new(
            BrokerConfig {
                hostname: name.to_string(),
                machine: MachineProfile::default_2005(),
                neighbors,
                ..BrokerConfig::default()
            },
            vec![bdn],
            ResponsePolicy::open(),
        )
    };
    let b0 = net.add_node("broker-0", realm, clocks, Box::new(mk_broker("broker-0.local", vec![])));
    let _b1 = net.add_node("broker-1", realm, clocks, Box::new(mk_broker("broker-1.local", vec![b0])));

    // The BDN's default `auto_attach` makes it maintain connections to
    // every broker that registers — no manual wiring needed.

    let mut cfg = DiscoveryConfig {
        bdns: vec![bdn],
        collection_window: Duration::from_millis(1500),
        max_responses: 2,
        ping_window: Duration::from_millis(500),
        ack_timeout: Duration::from_millis(700),
        ..DiscoveryConfig::default()
    };
    cfg.multicast_fallback = true;
    let client = net.add_node(
        "client",
        realm,
        clocks,
        Box::new(DiscoveryClient::with_auto_start(cfg, false)),
    );

    // Give everything a moment to sync clocks and advertise.
    std::thread::sleep(Duration::from_millis(800));

    println!("kicking off discovery #1 …");
    net.inject(client, Incoming::Timer { token: TIMER_START });
    std::thread::sleep(Duration::from_secs(4));

    // Tear everything down and inspect the actors.
    let mut actors = net.shutdown();
    let client_actor = actors
        .remove(&client)
        .expect("client actor returned")
        .as_any()
        .downcast_ref::<DiscoveryClient>()
        .map(|c| (c.completed.clone(), c.phase()))
        .expect("downcast client");
    let (completed, phase) = client_actor;
    println!("client finished in phase {phase:?} with {} completed run(s)", completed.len());
    for (i, o) in completed.iter().enumerate() {
        println!(
            "  run {i}: chose {:?} in {:?} ({} responses, multicast: {})",
            o.chosen,
            o.phases.total(),
            o.responses_received,
            o.used_multicast
        );
    }
    assert!(
        completed.iter().any(|o| o.chosen.is_some()),
        "at least one threaded-runtime discovery must succeed"
    );
    println!("threaded-runtime discovery OK");
}

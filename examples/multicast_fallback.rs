//! Fault tolerance: discovery survives dead BDNs via multicast (§7).
//!
//! Demonstrates the paper's claim that "the approach could work even if
//! none of the BDNs within the system are functioning": the client's
//! configured BDN is crashed, its ack times out, the request is
//! retransmitted, fails over, and finally goes out over realm-scoped
//! multicast — where the lab brokers answer.
//!
//! ```sh
//! cargo run --release --example multicast_fallback
//! ```

use std::time::Duration;

use nb::broker::TopologyKind;
use nb::discovery::scenario::ScenarioBuilder;
use nb::net::wan::BLOOMINGTON;

fn main() {
    // Five brokers: two in the Bloomington lab realm (multicast-reachable),
    // three on remote sites. A real BDN exists but we will kill it.
    let mut builder = ScenarioBuilder::new(TopologyKind::Star, BLOOMINGTON, 99);
    builder.broker_sites = vec![BLOOMINGTON, BLOOMINGTON, 2, 4, 5]; // 2 lab + UMN/FSU/Cardiff
    builder.discovery.ack_timeout = Duration::from_millis(500);
    builder.discovery.retransmits_per_bdn = 1;
    let mut scenario = builder.build();

    // Healthy run first: the BDN path works.
    let healthy = scenario.run_discovery_once();
    println!(
        "with the BDN up:   broker {:?} in {:?} (multicast used: {})",
        healthy.chosen.unwrap(),
        healthy.phases.total(),
        healthy.used_multicast
    );
    assert!(!healthy.used_multicast);

    // Kill the BDN and discover again.
    let bdn = scenario.bdn.expect("scenario has a BDN");
    scenario.sim.crash(bdn);
    println!("crashing the BDN ({bdn}) …");

    let fallback = scenario.run_discovery_once();
    let chosen = fallback.chosen.expect("multicast fallback must find a lab broker");
    let site = scenario.site_of_broker(chosen).unwrap();
    println!(
        "with the BDN down: broker {chosen} at {} in {:?} (multicast used: {})",
        scenario.wan.site(site).name,
        fallback.phases.total(),
        fallback.used_multicast
    );
    assert!(fallback.used_multicast, "the multicast path must have been used");
    assert_eq!(site, BLOOMINGTON, "only lab-realm brokers are reachable by multicast");
    println!(
        "note: issue phase now includes the ack timeouts ({:?}) before the fallback",
        fallback.phases.issue
    );
}

//! Bulk transfer with the substrate services: a large dataset is
//! compressed, fragmented to MTU-sized events, published through the
//! broker overlay, and reassembled + decompressed at the consumer — the
//! "(de)compression of large payloads, fragmentation and coalescing of
//! large datasets" services of §1.
//!
//! ```sh
//! cargo run --release --example bulk_transfer
//! ```

use std::time::Duration;

use nb::broker::{BrokerActor, BrokerConfig, PubSubClient};
use nb::net::{ClockProfile, LinkSpec, Sim};
use nb::services::compress::{compress_payload, compression_ratio, decompress_payload};
use nb::services::fragment::{fragment_payload, Fragment, Reassembler};
use nb::util::Uuid;
use nb::wire::{RealmId, Topic, TopicFilter, Wire};

fn main() {
    let mut sim = Sim::with_clock_profile(5, ClockProfile::perfect());
    sim.network_mut().inter_realm_spec = LinkSpec::wan(Duration::from_millis(20)).with_loss(0.0);
    let a = sim.add_node("broker-a", RealmId(0), Box::new(BrokerActor::new(BrokerConfig::default())));
    let b = sim.add_node(
        "broker-b",
        RealmId(1),
        Box::new(BrokerActor::new(BrokerConfig { neighbors: vec![a], ..BrokerConfig::default() })),
    );
    let filter = TopicFilter::parse("datasets/**").unwrap();
    let consumer = sim.add_node("consumer", RealmId(1), Box::new(PubSubClient::new(b, vec![filter])));
    let producer = sim.add_node("producer", RealmId(0), Box::new(PubSubClient::new(a, vec![])));
    sim.run_for(Duration::from_secs(2));

    // A 200 KiB synthetic "sensor log" — repetitive, so it compresses.
    let dataset = b"2005-06-29T12:00:00Z,sensor-42,temperature,21.5,C\n".repeat(4096);
    println!("dataset: {} bytes", dataset.len());
    let envelope = compress_payload(&dataset);
    println!(
        "compressed: {} bytes (ratio {:.2})",
        envelope.len(),
        compression_ratio(&dataset)
    );
    let frags = fragment_payload(Uuid::from_u128(7), &envelope, 1400);
    println!("fragments: {} × ≤1400 B", frags.len());
    let n = frags.len();
    {
        let p = sim.actor_mut::<PubSubClient>(producer).unwrap();
        for f in frags {
            p.queue_publish(Topic::parse("datasets/sensors").unwrap(), f.to_bytes().to_vec());
        }
    }
    sim.run_for(Duration::from_secs(10));

    let received = sim.actor::<PubSubClient>(consumer).unwrap().received.clone();
    println!("consumer received {} fragment events", received.len());
    assert_eq!(received.len(), n);
    let mut reassembler = Reassembler::new(Duration::from_secs(60), 8);
    let mut rebuilt = None;
    for ev in &received {
        let frag = Fragment::from_bytes(&ev.payload).expect("fragment");
        if let Some(p) = reassembler.accept(frag, sim.now()) {
            rebuilt = Some(p);
        }
    }
    let restored = decompress_payload(&rebuilt.expect("coalesced")).expect("decompressed");
    assert_eq!(restored, dataset);
    println!(
        "dataset reassembled and verified: {} bytes across the overlay in {:?} of virtual time",
        restored.len(),
        sim.now()
    );
}
